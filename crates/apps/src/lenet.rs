//! LeNet-5 inference — paper §VII-A.
//!
//! The paper's LeNet variant (square activations, second fully connected
//! layer modified to 64 units) expressed over packed vectors. Every layer
//! — the two strided convolutions included — is a linear map, so each is
//! lowered to the diagonal matrix–vector method; convolution matrices are
//! extremely diagonal-sparse, and [`linear_layer`] skips zero diagonals,
//! so the rotation count tracks the kernel footprint rather than the
//! matrix size.
//!
//! Shapes (paper preset): 28×28 input → conv 5×5/2 ×6 → square → conv
//! 5×5/2 ×16 → square → FC 256→120 → square → FC 120→64 → square →
//! FC 64→10.

use crate::linear::{linear_layer, matvec};
use crate::workloads::{conv_weights, synth_image, xavier_weights};
use hecate_ir::{Function, FunctionBuilder};
use std::collections::HashMap;

/// Configuration for the LeNet benchmark.
#[derive(Debug, Clone, Copy)]
pub struct LenetConfig {
    /// Input image side (square image, single channel).
    pub side: usize,
    /// Channels of the first convolution.
    pub c1: usize,
    /// Kernel size / stride of the first convolution.
    pub k1: usize,
    /// Stride of the first convolution.
    pub s1: usize,
    /// Channels of the second convolution.
    pub c2: usize,
    /// Kernel size of the second convolution.
    pub k2: usize,
    /// Stride of the second convolution.
    pub s2: usize,
    /// First fully connected width.
    pub f1: usize,
    /// Second fully connected width (64 in the paper's variant).
    pub f2: usize,
    /// Output classes.
    pub classes: usize,
    /// Weight/workload seed.
    pub seed: u64,
}

impl LenetConfig {
    /// The paper's modified LeNet-5.
    pub fn paper(seed: u64) -> Self {
        LenetConfig {
            side: 28,
            c1: 6,
            k1: 5,
            s1: 2,
            c2: 16,
            k2: 5,
            s2: 2,
            f1: 120,
            f2: 64,
            classes: 10,
            seed,
        }
    }

    /// A reduced shape for fast encrypted runs.
    pub fn small(seed: u64) -> Self {
        LenetConfig {
            side: 16,
            c1: 2,
            k1: 5,
            s1: 2,
            c2: 4,
            k2: 3,
            s2: 1,
            f1: 32,
            f2: 16,
            classes: 4,
            seed,
        }
    }

    fn conv1_out(&self) -> usize {
        (self.side - self.k1) / self.s1 + 1
    }

    fn conv2_out(&self) -> usize {
        (self.conv1_out() - self.k2) / self.s2 + 1
    }

    /// The flattened dimension after the second convolution.
    pub fn flat_dim(&self) -> usize {
        self.c2 * self.conv2_out() * self.conv2_out()
    }

    /// The vector width the circuit needs.
    pub fn vec_size(&self) -> usize {
        let dims = [
            self.side * self.side,
            self.c1 * self.conv1_out() * self.conv1_out(),
            self.flat_dim(),
            self.f1,
            self.f2,
            self.classes,
        ];
        dims.iter().copied().max().unwrap().next_power_of_two()
    }
}

/// Expands a strided valid convolution into an explicit `out×in` matrix
/// over channel-major flattened layouts.
pub fn conv_as_matrix(
    in_ch: usize,
    in_side: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    kernels: &[Vec<Vec<f64>>],
) -> Vec<Vec<f64>> {
    let out_side = (in_side - k) / stride + 1;
    let in_dim = in_ch * in_side * in_side;
    let out_dim = out_ch * out_side * out_side;
    let mut m = vec![vec![0.0; in_dim]; out_dim];
    for oc in 0..out_ch {
        for orow in 0..out_side {
            for ocol in 0..out_side {
                let o = oc * out_side * out_side + orow * out_side + ocol;
                for ic in 0..in_ch {
                    for kr in 0..k {
                        for kc in 0..k {
                            let ir = orow * stride + kr;
                            let icoln = ocol * stride + kc;
                            let i = ic * in_side * in_side + ir * in_side + icoln;
                            m[o][i] = kernels[oc][ic][kr * k + kc];
                        }
                    }
                }
            }
        }
    }
    m
}

/// The five weight matrices of a LeNet instance.
#[derive(Debug, Clone)]
pub struct LenetWeights {
    /// conv1 as a matrix.
    pub m1: Vec<Vec<f64>>,
    /// conv2 as a matrix.
    pub m2: Vec<Vec<f64>>,
    /// FC 1.
    pub m3: Vec<Vec<f64>>,
    /// FC 2.
    pub m4: Vec<Vec<f64>>,
    /// FC 3 (classifier).
    pub m5: Vec<Vec<f64>>,
}

/// Deterministic weights for a configuration.
pub fn weights(cfg: &LenetConfig) -> LenetWeights {
    let k1 = conv_weights(cfg.c1, 1, cfg.k1, cfg.seed.wrapping_add(1));
    let k2 = conv_weights(cfg.c2, cfg.c1, cfg.k2, cfg.seed.wrapping_add(2));
    LenetWeights {
        m1: conv_as_matrix(1, cfg.side, cfg.c1, cfg.k1, cfg.s1, &k1),
        m2: conv_as_matrix(cfg.c1, cfg.conv1_out(), cfg.c2, cfg.k2, cfg.s2, &k2),
        m3: xavier_weights(cfg.f1, cfg.flat_dim(), cfg.seed.wrapping_add(3)),
        m4: xavier_weights(cfg.f2, cfg.f1, cfg.seed.wrapping_add(4)),
        m5: xavier_weights(cfg.classes, cfg.f2, cfg.seed.wrapping_add(5)),
    }
}

/// Builds the benchmark: function plus input bindings.
pub fn build(cfg: &LenetConfig) -> (Function, HashMap<String, Vec<f64>>) {
    let vec = cfg.vec_size();
    let w = weights(cfg);
    let mut b = FunctionBuilder::new("lenet", vec);
    let x = b.input_cipher("image");
    let c1 = linear_layer(&mut b, x, &w.m1, None, vec);
    let a1 = b.square(c1);
    let c2 = linear_layer(&mut b, a1, &w.m2, None, vec);
    let a2 = b.square(c2);
    let f1 = linear_layer(&mut b, a2, &w.m3, None, vec);
    let a3 = b.square(f1);
    let f2 = linear_layer(&mut b, a3, &w.m4, None, vec);
    let a4 = b.square(f2);
    let logits = linear_layer(&mut b, a4, &w.m5, None, vec);
    b.output_named("logits", logits);

    let mut inputs = HashMap::new();
    inputs.insert(
        "image".to_string(),
        synth_image(cfg.side, cfg.side, cfg.seed),
    );
    (b.finish(), inputs)
}

/// Plain-domain reference inference.
pub fn reference(cfg: &LenetConfig, image: &[f64]) -> Vec<f64> {
    let w = weights(cfg);
    let sq = |v: Vec<f64>| v.into_iter().map(|x| x * x).collect::<Vec<_>>();
    let a1 = sq(matvec(&w.m1, image));
    let a2 = sq(matvec(&w.m2, &a1));
    let a3 = sq(matvec(&w.m3, &a2));
    let a4 = sq(matvec(&w.m4, &a3));
    matvec(&w.m5, &a4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::interp::interpret;

    #[test]
    fn conv_matrix_matches_direct_convolution() {
        let (in_ch, side, out_ch, k, stride) = (2usize, 6usize, 3usize, 3usize, 1usize);
        let kernels = conv_weights(out_ch, in_ch, k, 7);
        let m = conv_as_matrix(in_ch, side, out_ch, k, stride, &kernels);
        let x = crate::workloads::uniform_samples(in_ch * side * side, 8);
        let got = matvec(&m, &x);
        // Direct convolution.
        let out_side = (side - k) / stride + 1;
        for oc in 0..out_ch {
            for orow in 0..out_side {
                for ocol in 0..out_side {
                    let mut acc = 0.0;
                    for ic in 0..in_ch {
                        for kr in 0..k {
                            for kc in 0..k {
                                let i = ic * side * side
                                    + (orow * stride + kr) * side
                                    + (ocol * stride + kc);
                                acc += kernels[oc][ic][kr * k + kc] * x[i];
                            }
                        }
                    }
                    let o = oc * out_side * out_side + orow * out_side + ocol;
                    assert!((got[o] - acc).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn circuit_matches_reference() {
        let cfg = LenetConfig::small(5);
        let (f, ins) = build(&cfg);
        let got = &interpret(&f, &ins).unwrap()["logits"];
        let mut image = ins["image"].clone();
        image.resize(cfg.side * cfg.side, 0.0);
        let expect = reference(&cfg, &image);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "{g} vs {e}");
        }
    }

    #[test]
    fn shapes_are_consistent() {
        let small = LenetConfig::small(1);
        assert_eq!(small.conv1_out(), 6);
        assert_eq!(small.conv2_out(), 4);
        assert_eq!(small.flat_dim(), 64);
        assert_eq!(small.vec_size(), 256);
        let paper = LenetConfig::paper(1);
        assert_eq!(paper.conv1_out(), 12);
        assert_eq!(paper.conv2_out(), 4);
        assert_eq!(paper.flat_dim(), 256);
        assert_eq!(paper.vec_size(), 1024);
    }

    #[test]
    fn has_five_multiplicative_layers_plus_activations() {
        let cfg = LenetConfig::small(2);
        let (f, _) = build(&cfg);
        // Depth proxy: enough multiplications for 5 linear layers + 4 squares.
        let muls = f
            .ops()
            .iter()
            .filter(|o| matches!(o, hecate_ir::Op::Mul(..)))
            .count();
        assert!(muls > 100, "got {muls} multiplications");
    }
}
