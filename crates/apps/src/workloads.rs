//! Deterministic synthetic workload generation.
//!
//! The paper evaluates on 64×64 images, 16384-point regression sets, and
//! an MNIST digit. None of those inputs is essential to the compiler
//! results (latency and error depend on the circuit, not the pixel
//! values), so this module generates seeded synthetic equivalents: smooth
//! pseudo-images with edges for the vision benchmarks, noisy linear and
//! quadratic samples for the regression benchmarks, and Xavier-scaled
//! random weights for the networks.

use hecate_math::rng::Xoshiro256;

/// A synthetic grayscale image in `[0, 1]`, row-major, with smooth
/// gradients plus a bright rectangle so edge detectors have edges to find.
pub fn synth_image(h: usize, w: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let (r0, c0) = (h / 4, w / 4);
    let (r1, c1) = (3 * h / 4, 3 * w / 4);
    let mut img = Vec::with_capacity(h * w);
    for r in 0..h {
        for c in 0..w {
            let base = 0.2 + 0.3 * (r as f64 / h as f64) + 0.1 * (c as f64 / w as f64);
            let blob = if (r0..r1).contains(&r) && (c0..c1).contains(&c) {
                0.35
            } else {
                0.0
            };
            let noise = 0.02 * (rng.next_f64() - 0.5);
            img.push((base + blob + noise).clamp(0.0, 1.0));
        }
    }
    img
}

/// Uniform samples in `[-1, 1]`.
pub fn uniform_samples(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n).map(|_| rng.next_range_f64(-1.0, 1.0)).collect()
}

/// Targets `y = a·x + b` plus Gaussian noise.
pub fn linear_targets(x: &[f64], a: f64, b: f64, noise: f64, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    x.iter()
        .map(|&v| a * v + b + noise * rng.next_gaussian())
        .collect()
}

/// Targets `y = a·x² + b·x + c` plus Gaussian noise.
pub fn quadratic_targets(x: &[f64], a: f64, b: f64, c: f64, noise: f64, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    x.iter()
        .map(|&v| a * v * v + b * v + c + noise * rng.next_gaussian())
        .collect()
}

/// A dense weight matrix (`out × in`) with Xavier-style scaling, so layer
/// outputs stay O(1) and squared activations do not blow up scales.
pub fn xavier_weights(out_dim: usize, in_dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let limit = (1.5 / in_dim as f64).sqrt();
    (0..out_dim)
        .map(|_| {
            (0..in_dim)
                .map(|_| rng.next_range_f64(-limit, limit))
                .collect()
        })
        .collect()
}

/// A convolution kernel bank `kernels[out_ch][in_ch][k·k]` with the same
/// scaling rule.
pub fn conv_weights(out_ch: usize, in_ch: usize, k: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let limit = (1.5 / (in_ch * k * k) as f64).sqrt();
    (0..out_ch)
        .map(|_| {
            (0..in_ch)
                .map(|_| {
                    (0..k * k)
                        .map(|_| rng.next_range_f64(-limit, limit))
                        .collect()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_in_unit_range_with_edges() {
        let img = synth_image(16, 16, 1);
        assert_eq!(img.len(), 256);
        assert!(img.iter().all(|v| (0.0..=1.0).contains(v)));
        // The rectangle makes a visible step.
        let inside = img[8 * 16 + 8];
        let outside = img[16 + 1];
        assert!(inside - outside > 0.2);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(synth_image(8, 8, 5), synth_image(8, 8, 5));
        assert_ne!(synth_image(8, 8, 5), synth_image(8, 8, 6));
        assert_eq!(uniform_samples(10, 3), uniform_samples(10, 3));
    }

    #[test]
    fn regression_targets_follow_model() {
        let x = uniform_samples(1000, 7);
        let y = linear_targets(&x, 0.7, 0.2, 0.0, 8);
        for (xi, yi) in x.iter().zip(&y) {
            assert!((yi - (0.7 * xi + 0.2)).abs() < 1e-12);
        }
        let q = quadratic_targets(&x, 0.5, -0.3, 0.1, 0.0, 9);
        for (xi, qi) in x.iter().zip(&q) {
            assert!((qi - (0.5 * xi * xi - 0.3 * xi + 0.1)).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_scaled_to_fan_in() {
        let w = xavier_weights(10, 100, 11);
        assert_eq!(w.len(), 10);
        assert_eq!(w[0].len(), 100);
        let limit = (1.5f64 / 100.0).sqrt();
        assert!(w.iter().flatten().all(|v| v.abs() <= limit));
        let k = conv_weights(4, 2, 3, 12);
        assert_eq!((k.len(), k[0].len(), k[0][0].len()), (4, 2, 9));
    }
}
