//! Multi-layer perceptron inference (MLP) — paper §VII-A.
//!
//! A feed-forward classifier with square activation, applied to a packed
//! input vector with the diagonal matrix–vector method. The paper's shape
//! is 784×100 and 100×10; the small preset shrinks each dimension so the
//! whole pipeline runs under encryption in test time.

use crate::linear::{linear_layer, matvec};
use crate::workloads::{synth_image, xavier_weights};
use hecate_ir::{Function, FunctionBuilder};
use std::collections::HashMap;

/// Configuration for the MLP benchmark.
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Input dimension (flattened image).
    pub in_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Output classes.
    pub out: usize,
    /// Weight/workload seed.
    pub seed: u64,
}

impl MlpConfig {
    /// The paper's 784×100×10 network.
    pub fn paper(seed: u64) -> Self {
        MlpConfig {
            in_dim: 784,
            hidden: 100,
            out: 10,
            seed,
        }
    }

    /// A reduced shape for fast encrypted runs.
    pub fn small(seed: u64) -> Self {
        MlpConfig {
            in_dim: 64,
            hidden: 16,
            out: 4,
            seed,
        }
    }
}

/// The weights of a built MLP (also used by the reference evaluation).
#[derive(Debug, Clone)]
pub struct MlpWeights {
    /// Hidden-layer matrix (`hidden × in_dim`).
    pub w1: Vec<Vec<f64>>,
    /// Output-layer matrix (`out × hidden`).
    pub w2: Vec<Vec<f64>>,
}

/// Deterministic weights for a configuration.
pub fn weights(cfg: &MlpConfig) -> MlpWeights {
    MlpWeights {
        w1: xavier_weights(cfg.hidden, cfg.in_dim, cfg.seed.wrapping_add(10)),
        w2: xavier_weights(cfg.out, cfg.hidden, cfg.seed.wrapping_add(20)),
    }
}

/// Builds the benchmark: function plus input bindings.
pub fn build(cfg: &MlpConfig) -> (Function, HashMap<String, Vec<f64>>) {
    let vec = cfg.in_dim.next_power_of_two();
    let w = weights(cfg);
    let mut b = FunctionBuilder::new("mlp", vec);
    let x = b.input_cipher("x");
    let h = linear_layer(&mut b, x, &w.w1, None, vec);
    let act = b.square(h);
    let logits = linear_layer(&mut b, act, &w.w2, None, vec);
    b.output_named("logits", logits);

    let side = (cfg.in_dim as f64).sqrt().floor() as usize;
    let mut image = synth_image(side.max(1), side.max(1), cfg.seed);
    image.resize(cfg.in_dim, 0.3);
    let mut inputs = HashMap::new();
    inputs.insert("x".to_string(), image);
    (b.finish(), inputs)
}

/// Plain-domain reference inference for a configuration and input.
pub fn reference(cfg: &MlpConfig, x: &[f64]) -> Vec<f64> {
    let w = weights(cfg);
    let h: Vec<f64> = matvec(&w.w1, x).iter().map(|v| v * v).collect();
    matvec(&w.w2, &h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::interp::interpret;

    #[test]
    fn circuit_matches_reference_inference() {
        let cfg = MlpConfig::small(3);
        let (f, ins) = build(&cfg);
        let got = &interpret(&f, &ins).unwrap()["logits"];
        let expect = reference(&cfg, &ins["x"]);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "{g} vs {e}");
        }
    }

    #[test]
    fn logits_are_order_one() {
        // Xavier scaling keeps squared activations bounded, which keeps
        // waterline requirements realistic.
        let cfg = MlpConfig::small(4);
        let (f, ins) = build(&cfg);
        let got = &interpret(&f, &ins).unwrap()["logits"];
        assert!(got.iter().take(cfg.out).all(|v| v.abs() < 10.0));
    }

    #[test]
    fn paper_shape_builds() {
        let cfg = MlpConfig::paper(1);
        let (f, ins) = build(&cfg);
        assert_eq!(f.vec_size, 1024);
        assert_eq!(ins["x"].len(), 784);
        assert!(f.len() > 500, "paper-shape MLP is a large circuit");
    }
}
