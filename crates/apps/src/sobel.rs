//! Sobel filter (SF) — classic edge detection (paper §VII-A).
//!
//! Computes the horizontal and vertical image gradients with 3×3 Sobel
//! kernels, forms the squared gradient magnitude `g = Ix² + Iy²`, and
//! applies a degree-2 polynomial approximation of `√g` (encrypted programs
//! cannot take square roots, so EVA's Sobel does the same). Kernels are
//! normalized by 1/8 to keep values in the unit range.

use crate::linear::{stencil, Tap};
use crate::workloads::synth_image;
use hecate_ir::{Function, FunctionBuilder, ValueId};
use std::collections::HashMap;

/// Configuration for the Sobel benchmark.
#[derive(Debug, Clone, Copy)]
pub struct SobelConfig {
    /// Image height (power-of-two product with `w`).
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Workload seed.
    pub seed: u64,
}

/// Degree-2 least-squares fit of `√v` on `(0, 1]`.
const SQRT_POLY: [f64; 3] = [0.2000, 1.3125, -0.5543];

/// The Sobel `G_x` taps, scaled by 1/8.
pub fn gx_taps() -> Vec<Tap> {
    vec![
        (-1, -1, -0.125),
        (-1, 1, 0.125),
        (0, -1, -0.25),
        (0, 1, 0.25),
        (1, -1, -0.125),
        (1, 1, 0.125),
    ]
}

/// The Sobel `G_y` taps, scaled by 1/8.
pub fn gy_taps() -> Vec<Tap> {
    gx_taps().into_iter().map(|(r, c, v)| (c, r, v)).collect()
}

/// Emits the Sobel computation on an already-declared image value.
pub fn emit(b: &mut FunctionBuilder, img: ValueId, h: usize, w: usize, vec: usize) -> ValueId {
    let ix = stencil(b, img, &gx_taps(), h, w, vec);
    let iy = stencil(b, img, &gy_taps(), h, w, vec);
    let ix2 = b.square(ix);
    let iy2 = b.square(iy);
    let g = b.add(ix2, iy2);
    // √g ≈ c0 + c1·g + c2·g².
    let c1 = b.splat(SQRT_POLY[1]);
    let lin = b.mul(g, c1);
    let g2 = b.square(g);
    let c2 = b.splat(SQRT_POLY[2]);
    let quad = b.mul(g2, c2);
    let c0 = b.splat(SQRT_POLY[0]);
    let partial = b.add(lin, quad);
    b.add(partial, c0)
}

/// Builds the complete benchmark: function plus input bindings.
pub fn build(cfg: &SobelConfig) -> (Function, HashMap<String, Vec<f64>>) {
    let vec = (cfg.h * cfg.w).next_power_of_two();
    let mut b = FunctionBuilder::new("sobel", vec);
    let img = b.input_cipher("image");
    let out = emit(&mut b, img, cfg.h, cfg.w, vec);
    b.output_named("edges", out);
    let mut inputs = HashMap::new();
    inputs.insert("image".to_string(), synth_image(cfg.h, cfg.w, cfg.seed));
    (b.finish(), inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::interp::interpret;

    #[test]
    fn detects_the_rectangle_edge() {
        let cfg = SobelConfig {
            h: 16,
            w: 16,
            seed: 1,
        };
        let (f, ins) = build(&cfg);
        let out = &interpret(&f, &ins).unwrap()["edges"];
        // The synthetic image has a bright rectangle from (4,4) to (12,12):
        // response on the vertical edge columns must dominate the interior.
        // The 1/8-normalized kernels and the √-poly floor (≈0.2 at g=0)
        // compress the range, so the edge shows up as a modest bump.
        let edge = out[8 * 16 + 4].abs().max(out[8 * 16 + 3].abs());
        let interior = out[8 * 16 + 8].abs();
        assert!(edge > interior + 0.02, "edge {edge} vs interior {interior}");
    }

    #[test]
    fn matches_reference_stencil_math() {
        let cfg = SobelConfig {
            h: 8,
            w: 8,
            seed: 2,
        };
        let (f, ins) = build(&cfg);
        let out = &interpret(&f, &ins).unwrap()["edges"];
        let img = &ins["image"];
        // Reference at an interior pixel (cyclic indexing).
        let at = |r: i64, c: i64| img[((r.rem_euclid(8)) * 8 + c.rem_euclid(8)) as usize];
        let (r, c) = (4i64, 4i64);
        let gx = (-at(r - 1, c - 1) + at(r - 1, c + 1) - 2.0 * at(r, c - 1) + 2.0 * at(r, c + 1)
            - at(r + 1, c - 1)
            + at(r + 1, c + 1))
            / 8.0;
        let gy = (-at(r - 1, c - 1) + at(r + 1, c - 1) - 2.0 * at(r - 1, c) + 2.0 * at(r + 1, c)
            - at(r - 1, c + 1)
            + at(r + 1, c + 1))
            / 8.0;
        let g = gx * gx + gy * gy;
        let expect = SQRT_POLY[0] + SQRT_POLY[1] * g + SQRT_POLY[2] * g * g;
        let got = out[(r * 8 + c) as usize];
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn sqrt_poly_is_reasonable_on_unit_interval() {
        for v in [0.05f64, 0.25, 0.5, 0.75, 1.0] {
            let approx = SQRT_POLY[0] + SQRT_POLY[1] * v + SQRT_POLY[2] * v * v;
            assert!((approx - v.sqrt()).abs() < 0.12, "v={v}: {approx}");
        }
    }
}
