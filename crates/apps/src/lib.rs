//! The HECATE evaluation benchmarks (paper §VII-A) as IR builders.
//!
//! Six applications, eight benchmark configurations (the regressions run
//! at 2 and 3 epochs):
//!
//! | Name    | Module        | Paper shape                       |
//! |---------|---------------|-----------------------------------|
//! | SF      | [`sobel`]     | 64×64 image, 3×3 Sobel + √-poly   |
//! | HCD     | [`harris`]    | 64×64 image, Harris response      |
//! | MLP     | [`mlp`]       | 784×100×10, square activation     |
//! | LeNet   | [`lenet`]     | modified LeNet-5 (64-unit FC2)    |
//! | LR E2/3 | [`regression`]| 16384 samples, 2/3 GD epochs      |
//! | PR E2/3 | [`regression`]| quadratic, 2/3 GD epochs          |
//!
//! Every benchmark comes in two presets: `Paper` (the published shapes)
//! and `Small` (reduced dimensions with identical structure, so the full
//! suite runs under real encryption in CI time). Inputs are deterministic
//! synthetic workloads from [`workloads`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harris;
pub mod lenet;
pub mod linear;
pub mod logistic;
pub mod mlp;
pub mod regression;
pub mod sobel;
pub mod workloads;

use hecate_ir::Function;
use std::collections::HashMap;

/// Benchmark size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Reduced shapes for fast encrypted execution.
    Small,
    /// The shapes reported in the paper.
    Paper,
}

/// One runnable benchmark: a program and its input bindings.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name matching the paper ("SF", "LR E2", …).
    pub name: String,
    /// The input program.
    pub func: Function,
    /// Input bindings.
    pub inputs: HashMap<String, Vec<f64>>,
}

/// The paper's eight benchmark configurations, in presentation order.
pub fn all_benchmarks(preset: Preset) -> Vec<Benchmark> {
    let seed = 2022;
    let mk = |name: &str, (func, inputs): (Function, HashMap<String, Vec<f64>>)| Benchmark {
        name: name.to_string(),
        func,
        inputs,
    };
    type RegCfg = fn(usize, u64) -> regression::RegressionConfig;
    let (img, mlp_cfg, lenet_cfg, reg): (usize, mlp::MlpConfig, lenet::LenetConfig, RegCfg) =
        match preset {
            Preset::Small => (
                16,
                mlp::MlpConfig::small(seed),
                lenet::LenetConfig::small(seed),
                regression::RegressionConfig::small,
            ),
            Preset::Paper => (
                64,
                mlp::MlpConfig::paper(seed),
                lenet::LenetConfig::paper(seed),
                regression::RegressionConfig::paper,
            ),
        };
    vec![
        mk(
            "SF",
            sobel::build(&sobel::SobelConfig {
                h: img,
                w: img,
                seed,
            }),
        ),
        mk(
            "HCD",
            harris::build(&harris::HarrisConfig {
                h: img,
                w: img,
                seed,
            }),
        ),
        mk("MLP", mlp::build(&mlp_cfg)),
        mk("LeNet", lenet::build(&lenet_cfg)),
        mk("LR E2", regression::build_linear(&reg(2, seed))),
        mk("LR E3", regression::build_linear(&reg(3, seed))),
        mk("PR E2", regression::build_poly(&reg(2, seed))),
        mk("PR E3", regression::build_poly(&reg(3, seed))),
    ]
}

/// Looks up one benchmark by its paper name.
pub fn benchmark(name: &str, preset: Preset) -> Option<Benchmark> {
    all_benchmarks(preset).into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::interp::interpret;

    #[test]
    fn all_eight_benchmarks_build_and_interpret() {
        let benches = all_benchmarks(Preset::Small);
        assert_eq!(benches.len(), 8);
        let names: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(
            names,
            ["SF", "HCD", "MLP", "LeNet", "LR E2", "LR E3", "PR E2", "PR E3"]
        );
        for b in &benches {
            assert!(b.func.verify_structure().is_ok(), "{}", b.name);
            let out = interpret(&b.func, &b.inputs).unwrap();
            assert!(!out.is_empty(), "{} has outputs", b.name);
            for (name, v) in &out {
                assert!(
                    v.iter().all(|x| x.is_finite()),
                    "{}::{name} produced non-finite values",
                    b.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("LeNet", Preset::Small).is_some());
        assert!(benchmark("LR E3", Preset::Small).is_some());
        assert!(benchmark("nope", Preset::Small).is_none());
    }

    #[test]
    fn paper_preset_uses_paper_shapes() {
        let sf = benchmark("SF", Preset::Paper).unwrap();
        assert_eq!(sf.func.vec_size, 4096);
        let lr = benchmark("LR E2", Preset::Paper).unwrap();
        assert_eq!(lr.func.vec_size, 16384);
    }

    #[test]
    fn small_benchmarks_are_within_encrypted_reach() {
        for b in all_benchmarks(Preset::Small) {
            assert!(
                b.func.vec_size <= 256,
                "{}: vec {}",
                b.name,
                b.func.vec_size
            );
        }
    }
}
