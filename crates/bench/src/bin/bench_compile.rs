//! `bench_compile` — median wall-clock time of the full compile
//! pipeline (verify → canonicalize → SMU analysis → SMSE exploration →
//! parameter selection → final verification) per paper benchmark.
//!
//! Writes `BENCH_compile.json` at the workspace root in the stable
//! report schema (`name`, `median_us`, `iterations`); see
//! [`hecate_bench::bench_json`]. Accepts `--full` for paper-scale
//! shapes; the default Small preset finishes in seconds.

#![forbid(unsafe_code)]

use hecate_bench::{benchmarks, fmt_us, median_us, write_bench_report, BenchRow, HarnessConfig};
use hecate_compiler::{compile, Scheme};
use std::time::Instant;

const ITERATIONS: usize = 5;

fn main() {
    let cfg = HarnessConfig::from_args();
    let benches = benchmarks(&cfg);
    println!(
        "compile-time benchmark: {} benchmark(s) x {ITERATIONS} iteration(s), scheme HECATE",
        benches.len()
    );
    let mut rows = Vec::new();
    for bench in &benches {
        let mut opts = cfg.compile_opts(24.0);
        opts.degree = Some(cfg.effective_degree(bench));
        let samples: Vec<f64> = (0..ITERATIONS)
            .map(|_| {
                let t0 = Instant::now();
                compile(&bench.func, Scheme::Hecate, &opts)
                    .unwrap_or_else(|e| panic!("{}: compilation failed: {e}", bench.name));
                t0.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        let median = median_us(samples);
        println!("  {:<6} {:>10}", bench.name, fmt_us(median));
        rows.push(BenchRow {
            name: bench.name.clone(),
            median_us: median,
            iterations: ITERATIONS,
        });
    }
    let path = write_bench_report("BENCH_compile.json", &rows);
    println!("wrote {}", path.display());
}
