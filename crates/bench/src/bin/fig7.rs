//! Fig. 7 — minimum latency per benchmark for EVA / PARS / SMSE / HECATE.
//!
//! For every benchmark and scheme, sweeps the waterlines, filters
//! configurations whose (simulated) RMS error exceeds 2⁻⁸, picks the one
//! with the best estimated latency, executes it under encryption, and
//! reports measured latency plus speedup over EVA. Ends with the geometric
//! mean speedups the paper's headline 27% figure corresponds to.
//!
//! Usage: `cargo run --release -p hecate-bench --bin fig7 [--full]`

use hecate_bench::{benchmarks, fmt_us, geomean, run_benchmark, HarnessConfig};
use hecate_compiler::Scheme;

fn main() {
    let cfg = HarnessConfig::from_args();
    println!("Fig. 7 — minimum latency per benchmark per scheme");
    println!(
        "(preset: {:?}, degree {}, {} waterlines, error bound 2^-8)\n",
        cfg.preset,
        cfg.degree,
        cfg.waterlines.len()
    );
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}   {:>8} {:>8} {:>8}",
        "bench", "EVA", "PARS", "SMSE", "HECATE", "PARS×", "SMSE×", "HEC×"
    );

    let mut speedups: Vec<(Scheme, Vec<f64>)> = vec![
        (Scheme::Pars, Vec::new()),
        (Scheme::Smse, Vec::new()),
        (Scheme::Hecate, Vec::new()),
    ];

    for bench in benchmarks(&cfg) {
        let results = run_benchmark(&bench, &cfg);
        let latency = |s: Scheme| {
            results
                .iter()
                .find(|(sc, _)| *sc == s)
                .and_then(|(_, m)| m.as_ref().map(|m| m.measured_us))
        };
        let eva = latency(Scheme::Eva);
        let cols: Vec<String> = Scheme::ALL
            .iter()
            .map(|&s| latency(s).map(fmt_us).unwrap_or_else(|| "-".into()))
            .collect();
        let ratio = |s: Scheme| -> String {
            match (eva, latency(s)) {
                (Some(e), Some(v)) if v > 0.0 => format!("{:.2}", e / v),
                _ => "-".into(),
            }
        };
        for (s, acc) in speedups.iter_mut() {
            if let (Some(e), Some(v)) = (eva, latency(*s)) {
                if v > 0.0 {
                    acc.push(e / v);
                }
            }
        }
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>10}   {:>8} {:>8} {:>8}",
            bench.name,
            cols[0],
            cols[1],
            cols[2],
            cols[3],
            ratio(Scheme::Pars),
            ratio(Scheme::Smse),
            ratio(Scheme::Hecate),
        );
    }

    println!();
    for (s, acc) in &speedups {
        if acc.is_empty() {
            continue;
        }
        let g = geomean(acc);
        println!(
            "geomean speedup {s} over EVA: {g:.2}x ({:+.1}%)",
            (g - 1.0) * 100.0
        );
    }
    println!("\npaper reference: PARS +13.38%, SMSE +21.35%, HECATE +27.38% (avg)");
}
