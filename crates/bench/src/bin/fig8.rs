//! Fig. 8 — estimated vs actual latency across the sweep.
//!
//! Compiles every (benchmark × scheme × waterline) setting with a
//! *profiled* cost table (as the paper does: per-op latencies measured on
//! the execution backend), executes each feasible setting under
//! encryption, and reports the relative estimation error. The paper finds
//! a 1.3% geometric-mean and 4.8% maximum error over 1152 settings.
//!
//! Usage: `cargo run --release -p hecate-bench --bin fig8 [--full]`

use hecate_backend::exec::{execute_encrypted, BackendOptions};
use hecate_backend::profile_cost_table;
use hecate_bench::{benchmarks, geomean, HarnessConfig};
use hecate_compiler::{compile, CostModel, Scheme};
use std::sync::Arc;

fn main() {
    let mut cfg = HarnessConfig::from_args();
    // Profile the backend at the execution degree with a representative
    // chain, exactly as §VI-C prescribes.
    eprintln!("profiling backend at degree {} ...", cfg.degree);
    let table = profile_cost_table(cfg.degree, 40, 40, 14, 9, 11).expect("profiling");
    cfg.cost_model = CostModel::Profiled(Arc::new(table));

    println!("Fig. 8 — estimated vs actual latency");
    println!(
        "(preset: {:?}, degree {}, {} waterlines, profiled cost model)\n",
        cfg.preset,
        cfg.degree,
        cfg.waterlines.len()
    );
    println!(
        "{:<8} {:>7} {:>5} {:>12} {:>12} {:>8}",
        "bench", "scheme", "w", "estimated", "actual", "rel.err"
    );

    let mut rel_errors = Vec::new();
    for bench in benchmarks(&cfg) {
        for scheme in Scheme::ALL {
            for &w in &cfg.waterlines {
                let opts = cfg.compile_opts(w);
                let Ok(prog) = compile(&bench.func, scheme, &opts) else {
                    continue;
                };
                let bopts = BackendOptions {
                    degree_override: Some(cfg.degree),
                    seed: 7,
                    ..BackendOptions::default()
                };
                // Two runs, keep the faster: strips scheduler noise the
                // paper's long SEAL kernels do not suffer from at our tiny
                // reduced-scale op durations.
                let Ok(run_a) = execute_encrypted(&prog, &bench.inputs, &bopts) else {
                    continue;
                };
                let Ok(run_b) = execute_encrypted(&prog, &bench.inputs, &bopts) else {
                    continue;
                };
                let est = prog.stats.estimated_latency_us;
                let act = run_a.total_us.min(run_b.total_us);
                if act <= 0.0 {
                    continue;
                }
                let rel = (est - act).abs() / act;
                rel_errors.push(rel);
                println!(
                    "{:<8} {:>7} {:>5} {:>11.0}µs {:>11.0}µs {:>7.1}%",
                    bench.name,
                    scheme.to_string(),
                    w,
                    est,
                    act,
                    rel * 100.0
                );
            }
        }
    }

    if rel_errors.is_empty() {
        println!("no feasible settings");
        return;
    }
    let max = rel_errors.iter().fold(0.0f64, |m, v| m.max(*v));
    // Geomean over (1 + err) − 1 keeps zero errors well-defined.
    let shifted: Vec<f64> = rel_errors.iter().map(|e| 1.0 + e).collect();
    let gm = geomean(&shifted) - 1.0;
    println!(
        "\n{} settings | geomean relative error {:.1}% | max {:.1}%",
        rel_errors.len(),
        gm * 100.0,
        max * 100.0
    );
    println!("paper reference: 1152 settings, geomean 1.3%, max 4.8%");
}
