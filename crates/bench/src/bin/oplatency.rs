//! §II-C observation — operation latency versus rescaling level.
//!
//! Profiles every homomorphic operation at every level of a chain and
//! prints the latency table plus the level-1/level-0 multiplication ratio
//! (the paper reports 2.25× on SEAL; the exact constant is
//! backend-specific, the monotone super-linear drop is the point).
//!
//! Usage: `cargo run --release -p hecate-bench --bin oplatency [--full]`

use hecate_backend::profile_cost_table;
use hecate_bench::HarnessConfig;
use hecate_compiler::CostOp;

fn main() {
    let cfg = HarnessConfig::from_args();
    let chain_len = 8;
    eprintln!("profiling backend at degree {} ...", cfg.degree);
    let table = profile_cost_table(cfg.degree, 40, 40, chain_len, 5, 3).expect("profiling");

    println!(
        "Operation latency by level (degree {}, chain of {chain_len} primes), µs\n",
        cfg.degree
    );
    print!("{:<10}", "level");
    for level in 0..chain_len {
        print!("{:>10}", level);
    }
    println!();
    print!("{:<10}", "(primes)");
    for level in 0..chain_len {
        print!("{:>10}", chain_len - level);
    }
    println!("\n");
    for op in CostOp::ALL {
        print!("{:<10}", format!("{op:?}"));
        for level in 0..chain_len {
            let c = chain_len - level;
            match table.get(op, c) {
                Some(us) => print!("{us:>10.0}"),
                None => print!("{:>10}", "-"),
            }
        }
        println!();
    }

    println!("\nct×ct multiplication speedup per consumed level:");
    for c in (2..=chain_len).rev() {
        if let (Some(hi), Some(lo)) = (table.get(CostOp::MulCC, c), table.get(CostOp::MulCC, c - 1))
        {
            println!("  {} → {} primes: {:.2}x faster", c, c - 1, hi / lo);
        }
    }
    println!("paper reference (SEAL, i7-8700, their chain): level 1 is 2.25x faster than level 0");
}
