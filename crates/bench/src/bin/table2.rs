//! Table II — RMS error of the compiled programs at their best waterline.
//!
//! Mirrors Fig. 7's selection procedure and reports the *measured* RMS
//! error of each winner under real encryption (the paper's point: smaller
//! error does not imply a better configuration, only the bound matters).
//!
//! Usage: `cargo run --release -p hecate-bench --bin table2 [--full]`

use hecate_bench::{benchmarks, run_benchmark, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    println!(
        "Table II — RMS error at the selected configuration (bound 2^-8 = {:.2e})",
        2f64.powi(-8)
    );
    println!(
        "(preset: {:?}, degree {}, {} waterlines)\n",
        cfg.preset,
        cfg.degree,
        cfg.waterlines.len()
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "bench", "EVA", "PARS", "SMSE", "HECATE"
    );
    for bench in benchmarks(&cfg) {
        let results = run_benchmark(&bench, &cfg);
        let cells: Vec<String> = results
            .iter()
            .map(|(_, m)| {
                m.as_ref()
                    .map(|m| format!("{:.3e}", m.measured_rmse))
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12}",
            bench.name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!(
        "\n(waterline selection filtered on simulated error; cells are measured under encryption)"
    );
}
