//! `perf_smoke` — CI gate for the encrypted hot-path optimizations.
//!
//! Two checks, both hard failures:
//!
//! 1. **Bit-identity**: LeNet, HCD (Harris), and SF (Sobel) decrypt to
//!    *bit-identical* outputs (`f64::to_bits`) with rotation hoisting
//!    on/off and `kernel_jobs` ∈ {1, 2, 4}. Hoisting reassociates
//!    nothing and the per-limb kernels split only independent RNS limbs,
//!    so any drift is a real bug, not tolerance noise.
//! 2. **Hoisted-not-slower**: on a synthetic 8-way rotation fan-out the
//!    rotate kernel time with hoisting must not exceed the unhoisted
//!    time (with slack for CI timer jitter; the expected win is ≥1.3×).
//!
//! Exit code 0 on success, 1 with a message on any violation.

#![forbid(unsafe_code)]

use hecate_apps::{benchmark, Preset};
use hecate_backend::exec::{execute_encrypted, BackendOptions};
use hecate_bench::median_us;
use hecate_compiler::{compile, CompileOptions, Scheme};
use hecate_ir::{FunctionBuilder, Op};
use std::collections::HashMap;

const DEGREE: usize = 512;
const WORKLOADS: [&str; 3] = ["LeNet", "HCD", "SF"];
/// (hoist_rotations, kernel_jobs) variants compared against the
/// reference run (hoisting off, one kernel thread).
const VARIANTS: [(bool, usize); 5] = [(true, 1), (true, 2), (true, 4), (false, 2), (false, 4)];
/// Allowed slowdown of the hoisted rotate kernel before the gate trips;
/// generous because CI timers are noisy, but far below the ≥1.3×
/// speedup the hoisted path delivers.
const HOIST_SLACK: f64 = 1.15;
const TIMING_ITERS: usize = 7;

fn backend(hoist: bool, jobs: usize) -> BackendOptions {
    BackendOptions {
        degree_override: Some(DEGREE),
        hoist_rotations: hoist,
        kernel_jobs: jobs,
        ..BackendOptions::default()
    }
}

/// Runs every workload under every variant and compares the decrypted
/// outputs bit-for-bit against the (hoist=off, jobs=1) reference.
fn check_bit_identity() -> Result<(), String> {
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(DEGREE);
    for name in WORKLOADS {
        let bench = benchmark(name, Preset::Small).expect("known benchmark");
        let prog = compile(&bench.func, Scheme::Pars, &opts)
            .map_err(|e| format!("{name}: compile failed: {e}"))?;
        let reference = execute_encrypted(&prog, &bench.inputs, &backend(false, 1))
            .map_err(|e| format!("{name}: reference run failed: {e}"))?;
        for (hoist, jobs) in VARIANTS {
            let run = execute_encrypted(&prog, &bench.inputs, &backend(hoist, jobs))
                .map_err(|e| format!("{name}: hoist={hoist} jobs={jobs} failed: {e}"))?;
            for (out, want) in &reference.outputs {
                let got = &run.outputs[out];
                for (k, (a, b)) in want.iter().zip(got).enumerate() {
                    if a.to_bits() != b.to_bits() {
                        return Err(format!(
                            "{name}: output {out}[{k}] differs with hoist={hoist} \
                             jobs={jobs}: {a:e} vs {b:e}"
                        ));
                    }
                }
            }
            println!("  {name:<6} hoist={hoist:<5} jobs={jobs}  bit-identical");
        }
    }
    Ok(())
}

/// `sum_{s=1..=8} rot(x*x, s)`: the rotation fan-out shape hoisting
/// targets (same shape as the `bench_runtime` microbenchmark).
fn rotation_fan_func(width: usize, fan: usize) -> hecate_ir::Function {
    let mut b = FunctionBuilder::new("rotfan", width);
    let x = b.input_cipher("x");
    let x2 = b.mul(x, x);
    let mut acc = x2;
    for step in 1..=fan {
        let r = b.rotate(x2, step);
        acc = b.add(acc, r);
    }
    b.output(acc);
    b.finish()
}

/// Median microseconds inside rotate ops per run for one hoist setting.
fn rotate_kernel_us(hoist: bool) -> Result<f64, String> {
    let width = 64;
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(DEGREE);
    let prog = compile(&rotation_fan_func(width, 8), Scheme::Pars, &opts)
        .map_err(|e| format!("rot-fan: compile failed: {e}"))?;
    let rotate_ops: Vec<usize> = prog
        .func
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, Op::Rotate { .. }))
        .map(|(i, _)| i)
        .collect();
    let mut inputs = HashMap::new();
    inputs.insert(
        "x".to_string(),
        (0..width).map(|i| (i as f64) * 0.01 - 0.3).collect(),
    );
    let bopts = backend(hoist, 1);
    let samples: Vec<f64> = (0..=TIMING_ITERS)
        .map(|_| {
            execute_encrypted(&prog, &inputs, &bopts)
                .map(|run| rotate_ops.iter().map(|&i| run.op_us[i]).sum())
        })
        .collect::<Result<Vec<f64>, _>>()
        .map_err(|e| format!("rot-fan: run failed: {e}"))?
        .into_iter()
        .skip(1) // warmup
        .collect();
    Ok(median_us(samples))
}

fn check_hoisted_not_slower() -> Result<(), String> {
    let nohoist = rotate_kernel_us(false)?;
    let hoisted = rotate_kernel_us(true)?;
    println!(
        "  rot-fan8 rotate kernel: nohoist {nohoist:.0}us, hoisted {hoisted:.0}us \
         ({:.2}x)",
        nohoist / hoisted
    );
    if hoisted > nohoist * HOIST_SLACK {
        return Err(format!(
            "hoisted rotate kernel is slower: {hoisted:.0}us vs {nohoist:.0}us \
             (allowed {HOIST_SLACK}x slack)"
        ));
    }
    Ok(())
}

fn main() {
    println!("perf smoke: bit-identity across hoist x kernel_jobs");
    let result = check_bit_identity().and_then(|()| {
        println!("perf smoke: hoisted rotate kernel not slower");
        check_hoisted_not_slower()
    });
    match result {
        Ok(()) => println!("perf smoke: OK"),
        Err(msg) => {
            eprintln!("perf smoke FAILED: {msg}");
            std::process::exit(1);
        }
    }
}
