//! `bench_diff` — CI gate comparing fresh benchmark reports against the
//! committed baselines.
//!
//! Reads the freshly emitted `BENCH_compile.json` / `BENCH_runtime.json`
//! / `BENCH_throughput.json` from the workspace root (written by
//! `bench_compile` / `bench_runtime` / the `runtime_throughput` bench)
//! and compares each benchmark's median against the committed baseline
//! in `crates/bench/baselines/`. Exits nonzero when any benchmark's
//! median regressed by more than the tolerance (default 15%; override
//! with `--tolerance 0.25`).
//!
//! Benchmarks present on only one side are reported but never fail the
//! gate — a new or renamed benchmark is a review question, not a perf
//! regression. A missing fresh report is an error (the gate ran without
//! its input); a missing baseline is skipped with a notice so the gate
//! can be introduced before every report has a baseline.
//!
//! `--scaling-gate` additionally checks the worker-scaling rows of the
//! fresh `BENCH_throughput.json`: the `workers/8` row must run at least
//! 0.7x8 faster per request than `workers/1`. The check only applies on
//! machines with 8+ cores — below that the workers time-share and the
//! ratio measures the scheduler, not the runtime — and is skipped with
//! a notice otherwise.

#![forbid(unsafe_code)]

use hecate_bench::{compare_bench, fmt_us, parse_bench_json, BenchRow};
use std::path::{Path, PathBuf};

const REPORTS: [&str; 3] = [
    "BENCH_compile.json",
    "BENCH_runtime.json",
    "BENCH_throughput.json",
];
const DEFAULT_TOLERANCE: f64 = 0.15;

/// `workers/1` median over `workers/8` median must reach this on
/// machines with 8+ cores when `--scaling-gate` is passed.
const SCALING_FLOOR: f64 = 0.7 * 8.0;

/// Enforces the worker-scaling floor on the fresh throughput rows.
/// Returns the number of failures (0 or 1).
fn scaling_gate(fresh: &[BenchRow]) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let median = |name: &str| fresh.iter().find(|r| r.name == name).map(|r| r.median_us);
    let (Some(one), Some(eight)) = (median("workers/1"), median("workers/8")) else {
        eprintln!("bench_diff: --scaling-gate needs workers/1 and workers/8 rows");
        std::process::exit(2);
    };
    let speedup = one / eight;
    if cores < 8 {
        println!(
            "scaling gate: skipped on a {cores}-core machine \
             (8-worker speedup measured {speedup:.2}x)"
        );
        return 0;
    }
    if speedup < SCALING_FLOOR {
        eprintln!(
            "scaling gate: 8 workers reached only {speedup:.2}x of 1 worker \
             (floor {SCALING_FLOOR:.1}x on this {cores}-core machine)"
        );
        return 1;
    }
    println!("scaling gate: OK ({speedup:.2}x at 8 workers, floor {SCALING_FLOOR:.1}x)");
    0
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load(path: &Path) -> Result<Vec<BenchRow>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse_bench_json(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

fn main() {
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut check_scaling = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = args.next().unwrap_or_default();
                tolerance = match v.parse::<f64>() {
                    Ok(t) if t > 0.0 => t,
                    _ => {
                        eprintln!("bench_diff: --tolerance needs a positive fraction, got {v:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--scaling-gate" => check_scaling = true,
            other => {
                eprintln!("bench_diff: unknown argument {other:?}");
                eprintln!("usage: bench_diff [--tolerance FRACTION] [--scaling-gate]");
                std::process::exit(2);
            }
        }
    }

    let root = workspace_root();
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for report in REPORTS {
        let fresh_path = root.join(report);
        let baseline_path = root.join("crates/bench/baselines").join(report);
        if !baseline_path.exists() {
            println!("{report}: no committed baseline yet, skipping");
            // The scaling gate compares the fresh rows against each
            // other, so it still applies without a baseline.
            if check_scaling && report == "BENCH_throughput.json" {
                match load(&fresh_path) {
                    Ok(fresh) => regressions += scaling_gate(&fresh),
                    Err(e) => {
                        eprintln!("bench_diff: {e}");
                        std::process::exit(2);
                    }
                }
            }
            continue;
        }
        let fresh = match load(&fresh_path) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!(
                    "bench_diff: {e}\n(run `cargo run --release -p hecate-bench --bin \
                     bench_compile` / `bench_runtime` first)"
                );
                std::process::exit(2);
            }
        };
        let baseline = match load(&baseline_path) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("bench_diff: {e}");
                std::process::exit(2);
            }
        };
        println!(
            "{report} vs baseline (tolerance +{:.0}%):",
            tolerance * 100.0
        );
        let deltas = compare_bench(&baseline, &fresh, tolerance);
        for d in &deltas {
            println!(
                "  {:<18} {:>10} -> {:>10}  {:>6.2}x{}",
                d.name,
                fmt_us(d.baseline_us),
                fmt_us(d.fresh_us),
                d.ratio,
                if d.regressed { "  REGRESSION" } else { "" }
            );
            if d.regressed {
                regressions += 1;
            }
        }
        compared += deltas.len();
        if check_scaling && report == "BENCH_throughput.json" {
            regressions += scaling_gate(&fresh);
        }
        for row in &fresh {
            if !baseline.iter().any(|b| b.name == row.name) {
                println!("  {:<18} new benchmark (no baseline)", row.name);
            }
        }
        for row in &baseline {
            if !fresh.iter().any(|f| f.name == row.name) {
                println!("  {:<18} missing from fresh report", row.name);
            }
        }
    }
    if compared == 0 {
        eprintln!("bench_diff: nothing compared — no baselines found");
        std::process::exit(2);
    }
    if regressions > 0 {
        eprintln!(
            "bench_diff FAILED: {regressions} benchmark(s) regressed beyond +{:.0}%",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("bench_diff: OK ({compared} benchmark(s) within tolerance)");
}
