//! `bench_diff` — CI gate comparing fresh benchmark reports against the
//! committed baselines.
//!
//! Reads the freshly emitted `BENCH_compile.json` / `BENCH_runtime.json`
//! / `BENCH_throughput.json` from the workspace root (written by
//! `bench_compile` / `bench_runtime` / the `runtime_throughput` bench)
//! and compares each benchmark's median against the committed baseline
//! in `crates/bench/baselines/`. Exits nonzero when any benchmark's
//! median regressed by more than the tolerance (default 15%; override
//! with `--tolerance 0.25`).
//!
//! Benchmarks present on only one side are reported but never fail the
//! gate — a new or renamed benchmark is a review question, not a perf
//! regression. A missing fresh report is an error (the gate ran without
//! its input); a missing baseline is skipped with a notice so the gate
//! can be introduced before every report has a baseline.

#![forbid(unsafe_code)]

use hecate_bench::{compare_bench, fmt_us, parse_bench_json, BenchRow};
use std::path::{Path, PathBuf};

const REPORTS: [&str; 3] = [
    "BENCH_compile.json",
    "BENCH_runtime.json",
    "BENCH_throughput.json",
];
const DEFAULT_TOLERANCE: f64 = 0.15;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load(path: &Path) -> Result<Vec<BenchRow>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse_bench_json(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

fn main() {
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = args.next().unwrap_or_default();
                tolerance = match v.parse::<f64>() {
                    Ok(t) if t > 0.0 => t,
                    _ => {
                        eprintln!("bench_diff: --tolerance needs a positive fraction, got {v:?}");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("bench_diff: unknown argument {other:?}");
                eprintln!("usage: bench_diff [--tolerance FRACTION]");
                std::process::exit(2);
            }
        }
    }

    let root = workspace_root();
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for report in REPORTS {
        let fresh_path = root.join(report);
        let baseline_path = root.join("crates/bench/baselines").join(report);
        if !baseline_path.exists() {
            println!("{report}: no committed baseline yet, skipping");
            continue;
        }
        let fresh = match load(&fresh_path) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!(
                    "bench_diff: {e}\n(run `cargo run --release -p hecate-bench --bin \
                     bench_compile` / `bench_runtime` first)"
                );
                std::process::exit(2);
            }
        };
        let baseline = match load(&baseline_path) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("bench_diff: {e}");
                std::process::exit(2);
            }
        };
        println!(
            "{report} vs baseline (tolerance +{:.0}%):",
            tolerance * 100.0
        );
        let deltas = compare_bench(&baseline, &fresh, tolerance);
        for d in &deltas {
            println!(
                "  {:<18} {:>10} -> {:>10}  {:>6.2}x{}",
                d.name,
                fmt_us(d.baseline_us),
                fmt_us(d.fresh_us),
                d.ratio,
                if d.regressed { "  REGRESSION" } else { "" }
            );
            if d.regressed {
                regressions += 1;
            }
        }
        compared += deltas.len();
        for row in &fresh {
            if !baseline.iter().any(|b| b.name == row.name) {
                println!("  {:<18} new benchmark (no baseline)", row.name);
            }
        }
        for row in &baseline {
            if !fresh.iter().any(|f| f.name == row.name) {
                println!("  {:<18} missing from fresh report", row.name);
            }
        }
    }
    if compared == 0 {
        eprintln!("bench_diff: nothing compared — no baselines found");
        std::process::exit(2);
    }
    if regressions > 0 {
        eprintln!(
            "bench_diff FAILED: {regressions} benchmark(s) regressed beyond +{:.0}%",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("bench_diff: OK ({compared} benchmark(s) within tolerance)");
}
