//! `bench_runtime` — median end-to-end served-request latency through
//! `hecate-runtime` with a warm plan cache, per workload.
//!
//! Each workload gets one tenant session; the first request pays the
//! compile and keygen, then `ITERATIONS` requests are submitted one at a
//! time so the measured latency is pure serving (cache hit + encrypted
//! execution), not queueing. Writes `BENCH_runtime.json` at the
//! workspace root in the stable report schema (`name`, `median_us`,
//! `iterations`); see [`hecate_bench::bench_json`].
//!
//! Also measures the rotate-dominated kernel time of a synthetic
//! rotation fan-out (the sum of `FAN` rotations of one value) with and
//! without hoisting, so the report captures the Halevi–Shoup win
//! directly: `rot-fan8/hoisted` vs `rot-fan8/nohoist` is the kernel
//! time spent inside rotate ops (from the executor's per-op timings),
//! not end-to-end latency.

#![forbid(unsafe_code)]

use hecate_apps::{benchmark, Preset};
use hecate_backend::exec::{execute_encrypted, BackendOptions};
use hecate_bench::{fmt_us, median_us, write_bench_report, BenchRow};
use hecate_compiler::{compile, CompileOptions, Scheme};
use hecate_ir::{FunctionBuilder, Op};
use hecate_runtime::{Request, Runtime, RuntimeConfig};
use std::collections::HashMap;

const WORKLOADS: [&str; 2] = ["SF", "HCD"];
const ITERATIONS: usize = 12;
const DEGREE: usize = 512;
/// Rotations sharing one hoisted decomposition in the microbenchmark.
const FAN: usize = 8;
/// Slot width of the rotation-fan function.
const FAN_WIDTH: usize = 64;

/// `sum_{s=1..=FAN} rot(x*x, s)` — a mid-chain rotation fan-out with
/// `FAN` distinct canonical steps, the shape hoisting is built for.
fn rotation_fan_func() -> hecate_ir::Function {
    let mut b = FunctionBuilder::new("rotfan", FAN_WIDTH);
    let x = b.input_cipher("x");
    let x2 = b.mul(x, x); // descend a level so rotations run mid-chain
    let mut acc = x2;
    for step in 1..=FAN {
        let r = b.rotate(x2, step);
        acc = b.add(acc, r);
    }
    b.output(acc);
    b.finish()
}

/// Median microseconds spent inside rotate ops per run, over
/// `ITERATIONS` encrypted executions (one warmup run off the record).
fn rotate_kernel_us(hoist: bool) -> f64 {
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(DEGREE);
    let prog = compile(&rotation_fan_func(), Scheme::Pars, &opts).expect("rot-fan compiles");
    let rotate_ops: Vec<usize> = prog
        .func
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, Op::Rotate { .. }))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(rotate_ops.len(), FAN, "all distinct rotations survive CSE");
    let mut inputs = HashMap::new();
    inputs.insert(
        "x".to_string(),
        (0..FAN_WIDTH).map(|i| (i as f64) * 0.01 - 0.3).collect(),
    );
    let bopts = BackendOptions {
        degree_override: Some(DEGREE),
        hoist_rotations: hoist,
        ..BackendOptions::default()
    };
    let samples: Vec<f64> = (0..=ITERATIONS)
        .map(|_| {
            let run = execute_encrypted(&prog, &inputs, &bopts).expect("rot-fan runs");
            rotate_ops.iter().map(|&i| run.op_us[i]).sum()
        })
        .skip(1) // warmup
        .collect();
    median_us(samples)
}

fn main() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        jobs_per_request: 1,
        backend: BackendOptions {
            degree_override: Some(DEGREE),
            ..BackendOptions::default()
        },
        ..RuntimeConfig::default()
    });
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(DEGREE);
    println!(
        "runtime-latency benchmark: {} workload(s) x {ITERATIONS} iteration(s), warm cache",
        WORKLOADS.len()
    );
    let mut rows = Vec::new();
    for name in WORKLOADS {
        let bench = benchmark(name, Preset::Small).expect("known benchmark");
        let session = rt.open_session();
        let mk = || Request {
            session,
            func: bench.func.clone(),
            scheme: Scheme::Pars,
            options: opts.clone(),
            inputs: bench.inputs.clone(),
            deadline: None,
            max_retries: 0,
        };
        // Warm the plan cache and the session's engine off the record.
        rt.run_batch(vec![mk()])
            .pop()
            .expect("one response")
            .expect("warmup request");
        let samples: Vec<f64> = (0..ITERATIONS)
            .map(|_| {
                let resp = rt
                    .run_batch(vec![mk()])
                    .pop()
                    .expect("one response")
                    .expect("measured request");
                assert!(resp.cache_hit, "measured request must hit the plan cache");
                resp.latency_us
            })
            .collect();
        let median = median_us(samples);
        println!("  {name:<6} {:>10}", fmt_us(median));
        rows.push(BenchRow {
            name: name.to_string(),
            median_us: median,
            iterations: ITERATIONS,
        });
    }
    rt.shutdown();
    println!("rotation-fan microbenchmark: {FAN} rotations of one value, rotate kernel time");
    let nohoist = rotate_kernel_us(false);
    let hoisted = rotate_kernel_us(true);
    println!("  rot-fan{FAN}/nohoist {:>10}", fmt_us(nohoist));
    println!(
        "  rot-fan{FAN}/hoisted {:>10}   ({:.2}x)",
        fmt_us(hoisted),
        nohoist / hoisted
    );
    rows.push(BenchRow {
        name: format!("rot-fan{FAN}/nohoist"),
        median_us: nohoist,
        iterations: ITERATIONS,
    });
    rows.push(BenchRow {
        name: format!("rot-fan{FAN}/hoisted"),
        median_us: hoisted,
        iterations: ITERATIONS,
    });
    let path = write_bench_report("BENCH_runtime.json", &rows);
    println!("wrote {}", path.display());
}
