//! `bench_runtime` — median end-to-end served-request latency through
//! `hecate-runtime` with a warm plan cache, per workload.
//!
//! Each workload gets one tenant session; the first request pays the
//! compile and keygen, then `ITERATIONS` requests are submitted one at a
//! time so the measured latency is pure serving (cache hit + encrypted
//! execution), not queueing. Writes `BENCH_runtime.json` at the
//! workspace root in the stable report schema (`name`, `median_us`,
//! `iterations`); see [`hecate_bench::bench_json`].

#![forbid(unsafe_code)]

use hecate_apps::{benchmark, Preset};
use hecate_backend::exec::BackendOptions;
use hecate_bench::{fmt_us, median_us, write_bench_report, BenchRow};
use hecate_compiler::{CompileOptions, Scheme};
use hecate_runtime::{Request, Runtime, RuntimeConfig};

const WORKLOADS: [&str; 2] = ["SF", "HCD"];
const ITERATIONS: usize = 12;
const DEGREE: usize = 512;

fn main() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        jobs_per_request: 1,
        backend: BackendOptions {
            degree_override: Some(DEGREE),
            ..BackendOptions::default()
        },
    });
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(DEGREE);
    println!(
        "runtime-latency benchmark: {} workload(s) x {ITERATIONS} iteration(s), warm cache",
        WORKLOADS.len()
    );
    let mut rows = Vec::new();
    for name in WORKLOADS {
        let bench = benchmark(name, Preset::Small).expect("known benchmark");
        let session = rt.open_session();
        let mk = || Request {
            session,
            func: bench.func.clone(),
            scheme: Scheme::Pars,
            options: opts.clone(),
            inputs: bench.inputs.clone(),
        };
        // Warm the plan cache and the session's engine off the record.
        rt.run_batch(vec![mk()])
            .pop()
            .expect("one response")
            .expect("warmup request");
        let samples: Vec<f64> = (0..ITERATIONS)
            .map(|_| {
                let resp = rt
                    .run_batch(vec![mk()])
                    .pop()
                    .expect("one response")
                    .expect("measured request");
                assert!(resp.cache_hit, "measured request must hit the plan cache");
                resp.latency_us
            })
            .collect();
        let median = median_us(samples);
        println!("  {name:<6} {:>10}", fmt_us(median));
        rows.push(BenchRow {
            name: name.to_string(),
            median_us: median,
            iterations: ITERATIONS,
        });
    }
    rt.shutdown();
    let path = write_bench_report("BENCH_runtime.json", &rows);
    println!("wrote {}", path.display());
}
