//! Ablation study of HECATE's design choices (beyond the paper's tables).
//!
//! DESIGN.md calls out three separable mechanisms; this harness measures
//! the estimated-latency cost of removing each one:
//!
//! - SMU **operation-aware split** (Algorithm 1 phase 2),
//! - SMU **user-aware split** (Algorithm 1 phase 3),
//! - the **early-modswitch** motion inherited from EVA.
//!
//! Usage: `cargo run --release -p hecate-bench --bin ablation [--full]`

use hecate_bench::{benchmarks, HarnessConfig};
use hecate_compiler::planner::explore_smu;
use hecate_compiler::smu::{analyze_with, SmuOptions};

fn main() {
    let cfg = HarnessConfig::from_args();
    let w = 24.0;

    println!("Ablations at waterline {w} (estimated latency, µs; plans explored)");
    println!(
        "\n{:<8} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6}",
        "bench", "full", "plans", "no-op2", "plans", "no-user3", "plans", "no-early", "plans"
    );

    let variants: [(&str, SmuOptions, bool); 4] = [
        ("full", SmuOptions::default(), true),
        (
            "no-op-split",
            SmuOptions {
                operation_split: false,
                user_split: true,
            },
            true,
        ),
        (
            "no-user-split",
            SmuOptions {
                operation_split: true,
                user_split: false,
            },
            true,
        ),
        ("no-early-ms", SmuOptions::default(), false),
    ];

    for bench in benchmarks(&cfg) {
        let mut cells = Vec::new();
        for (_, smu_opts, early) in &variants {
            let mut opts = cfg.compile_opts(w);
            opts.early_modswitch = *early;
            let analysis = analyze_with(&bench.func, w, smu_opts);
            match explore_smu(&bench.func, &analysis, true, &opts) {
                Ok(out) => cells.push((out.best.cost_us, out.plans_explored)),
                Err(_) => cells.push((f64::NAN, 0)),
            }
        }
        println!(
            "{:<8} | {:>9.0} {:>6} | {:>9.0} {:>6} | {:>9.0} {:>6} | {:>9.0} {:>6}",
            bench.name,
            cells[0].0,
            cells[0].1,
            cells[1].0,
            cells[1].1,
            cells[2].0,
            cells[2].1,
            cells[3].0,
            cells[3].1,
        );
    }
    println!(
        "\nReading: coarser units (fewer split phases) shrink the explored-plan count \
         but can miss plans; disabling early modswitch leaves modswitches late, \
         running more operations at low (expensive) levels."
    );
}
