//! Table III — search-space reduction from scale management units.
//!
//! For each benchmark: the use–def edge count, the SMU count, and the
//! epochs/plan counts of the naïve per-use exploration versus HECATE's
//! SMU-based exploration. The naïve run is capped (the paper measured up
//! to 1.48M plans / 649 hours); capped rows are marked `≥`.
//!
//! Usage: `cargo run --release -p hecate-bench --bin table3 [--full] [--naive-budget N]`

use hecate_bench::{benchmarks, HarnessConfig};
use hecate_compiler::planner::{explore_naive, explore_smu};
use hecate_compiler::smu;
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_args();
    let budget: usize = std::env::args()
        .skip_while(|a| a != "--naive-budget")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let w = 24.0;
    let opts = cfg.compile_opts(w);

    println!("Table III — SMU search-space reduction (waterline {w}, naïve budget {budget} plans)");
    println!(
        "\n{:<8} {:>7} {:>5} | {:>8} {:>10} {:>8} | {:>6} {:>7} {:>8} | {:>9}",
        "bench",
        "uses",
        "SMU",
        "n.epoch",
        "n.plans",
        "n.time",
        "epoch",
        "plans",
        "time",
        "reduction"
    );

    for bench in benchmarks(&cfg) {
        let uses = hecate_ir::analysis::use_edge_count(&bench.func);
        let analysis = smu::analyze(&bench.func, w);

        let t0 = Instant::now();
        let hec = explore_smu(&bench.func, &analysis, true, &opts).expect("smu exploration");
        let hec_time = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let naive = explore_naive(&bench.func, true, &opts, Some(budget)).ok();
        let naive_time = t1.elapsed().as_secs_f64();

        let (n_epoch, n_plans, capped) = naive
            .map(|n| (n.epochs, n.plans_explored, n.capped))
            .unwrap_or((0, 0, true));
        // When capped, extrapolate the plan count the naïve climb would
        // need to reach HECATE's epochs (a lower bound; the paper's
        // measurements show the naïve scheme needs at least as many).
        let n_est = if capped {
            (uses * (hec.epochs + 1) + 1).max(n_plans)
        } else {
            n_plans
        };
        let n_plans_str = if capped {
            format!("≥{n_est}")
        } else {
            format!("{n_plans}")
        };
        let reduction = if hec.plans_explored > 0 {
            format!("{:.1}x", n_est as f64 / hec.plans_explored as f64)
        } else {
            "-".into()
        };
        println!(
            "{:<8} {:>7} {:>5} | {:>8} {:>10} {:>7.1}s | {:>6} {:>7} {:>7.1}s | {:>9}",
            bench.name,
            uses,
            analysis.unit_count,
            if capped {
                format!("≥{n_epoch}")
            } else {
                format!("{n_epoch}")
            },
            n_plans_str,
            naive_time,
            hec.epochs,
            hec.plans_explored,
            hec_time,
            reduction,
        );
    }
    println!("\npaper reference: e.g. LeNet 11735 uses → 48 SMUs; 1.48E6 naïve plans (649 h) vs 340 s for HECATE");
}
