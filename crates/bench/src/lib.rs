//! Benchmark harness reproducing the paper's evaluation (§VII).
//!
//! The binaries regenerate every table and figure:
//!
//! - `fig7` — minimum latency per benchmark per scheme over a waterline
//!   sweep, with speedups over EVA (Fig. 7);
//! - `table2` — RMS error of each chosen configuration (Table II);
//! - `table3` — search-space reduction: uses vs SMUs, naïve vs HECATE
//!   epochs and plan counts (Table III);
//! - `fig8` — estimated vs actual latency over the sweep, with relative
//!   error statistics (Fig. 8);
//! - `oplatency` — per-level operation latency, including the paper's
//!   "level-1 multiplication is 2.25× faster than level 0" observation
//!   (§II-C).
//!
//! All binaries accept `--full` for paper-scale shapes and the full
//! 36-point waterline sweep; the default is a reduced but
//! structure-preserving configuration that runs on a laptop.

#![forbid(unsafe_code)]

use hecate_apps::{Benchmark, Preset};
use hecate_backend::exec::{execute_encrypted, BackendOptions};
use hecate_backend::{max_rms_error, rms_error, simulate};
use hecate_compiler::{compile, CompileOptions, CompiledProgram, CostModel, Scheme};
use hecate_ir::interp::interpret;
use std::collections::HashMap;

/// Harness configuration shared by the binaries.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Benchmark shapes.
    pub preset: Preset,
    /// Ring degree for execution (overrides security-selected degrees so
    /// reduced runs stay fast; the shape of the comparison is
    /// degree-independent).
    pub degree: usize,
    /// Waterlines to sweep.
    pub waterlines: Vec<f64>,
    /// Maximum accepted RMS error (the paper uses 2^-8).
    pub error_bound: f64,
    /// Cost model for compilation-time estimates.
    pub cost_model: CostModel,
}

impl HarnessConfig {
    /// The reduced default: small shapes, 6 waterlines, degree 512.
    pub fn quick() -> Self {
        HarnessConfig {
            preset: Preset::Small,
            degree: 512,
            waterlines: vec![18.0, 22.0, 26.0, 30.0, 36.0, 42.0],
            error_bound: 2f64.powi(-8),
            cost_model: CostModel::Analytic,
        }
    }

    /// The paper-scale configuration: full shapes and the 36-point sweep.
    pub fn full() -> Self {
        HarnessConfig {
            preset: Preset::Paper,
            degree: 8192,
            waterlines: hecate_compiler::default_waterlines(),
            error_bound: 2f64.powi(-8),
            cost_model: CostModel::Analytic,
        }
    }

    /// Picks quick/full from command-line arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            HarnessConfig::full()
        } else {
            HarnessConfig::quick()
        }
    }

    /// Compile options at one waterline.
    pub fn compile_opts(&self, waterline: f64) -> CompileOptions {
        let mut o = CompileOptions::with_waterline(waterline);
        o.degree = Some(self.degree);
        o.cost_model = self.cost_model.clone();
        o
    }

    /// The ring degree a benchmark actually runs at: the configured degree,
    /// raised if the benchmark's packed vector needs more slots (paper-shape
    /// regressions use 16384 slots).
    pub fn effective_degree(&self, bench: &Benchmark) -> usize {
        self.degree.max(2 * bench.func.vec_size)
    }
}

/// The outcome of the waterline sweep for one (benchmark, scheme) pair.
#[derive(Debug)]
pub struct SweepResult {
    /// The scheme.
    pub scheme: Scheme,
    /// The waterline that minimized estimated latency within the error
    /// bound.
    pub best_waterline: f64,
    /// The winning compiled program.
    pub program: CompiledProgram,
    /// Estimated latency of the winner (µs).
    pub estimated_us: f64,
    /// Simulated RMS error of the winner.
    pub simulated_rmse: f64,
}

/// Sweeps waterlines for one scheme, filtering by the simulated error
/// bound and picking the fastest estimate — the paper's §VII-B procedure.
///
/// Returns `None` if no waterline is feasible.
pub fn sweep(bench: &Benchmark, scheme: Scheme, cfg: &HarnessConfig) -> Option<SweepResult> {
    let degree = cfg.effective_degree(bench);
    let mut best: Option<SweepResult> = None;
    for &w in &cfg.waterlines {
        let mut opts = cfg.compile_opts(w);
        opts.degree = Some(degree);
        let Ok(prog) = compile(&bench.func, scheme, &opts) else {
            continue;
        };
        let sim = simulate(&prog, &bench.inputs, degree);
        let rmse = max_rms_error(&sim);
        if rmse > cfg.error_bound {
            continue;
        }
        let est = prog.stats.estimated_latency_us;
        if best.as_ref().map(|b| est < b.estimated_us).unwrap_or(true) {
            best = Some(SweepResult {
                scheme,
                best_waterline: w,
                program: prog,
                estimated_us: est,
                simulated_rmse: rmse,
            });
        }
    }
    best
}

/// A measured run of a chosen configuration.
#[derive(Debug)]
pub struct MeasuredResult {
    /// The sweep outcome this measures.
    pub scheme: Scheme,
    /// Best waterline chosen by the sweep.
    pub best_waterline: f64,
    /// Estimated latency (µs).
    pub estimated_us: f64,
    /// Measured homomorphic latency (µs).
    pub measured_us: f64,
    /// Measured RMS error against the plaintext reference.
    pub measured_rmse: f64,
    /// Modulus chain length of the chosen configuration.
    pub chain_len: usize,
}

/// Executes the winner of a sweep under encryption and measures latency
/// and error.
///
/// # Errors
/// Propagates backend execution failures.
pub fn measure(
    bench: &Benchmark,
    result: &SweepResult,
    cfg: &HarnessConfig,
) -> Result<MeasuredResult, hecate_backend::ExecError> {
    let opts = BackendOptions {
        degree_override: Some(cfg.effective_degree(bench)),
        seed: 99,
        ..BackendOptions::default()
    };
    let run = execute_encrypted(&result.program, &bench.inputs, &opts)?;
    let reference = interpret(&bench.func, &bench.inputs).expect("inputs bound");
    let mut worst = 0.0f64;
    for (name, v) in &run.outputs {
        worst = worst.max(rms_error(v, &reference[name]));
    }
    Ok(MeasuredResult {
        scheme: result.scheme,
        best_waterline: result.best_waterline,
        estimated_us: result.estimated_us,
        measured_us: run.total_us,
        measured_rmse: worst,
        chain_len: run.chain_len,
    })
}

/// Runs the full Fig.-7 procedure for one benchmark: sweep every scheme,
/// then measure each winner.
pub fn run_benchmark(
    bench: &Benchmark,
    cfg: &HarnessConfig,
) -> Vec<(Scheme, Option<MeasuredResult>)> {
    Scheme::ALL
        .iter()
        .map(|&scheme| {
            let m = sweep(bench, scheme, cfg).and_then(|s| measure(bench, &s, cfg).ok());
            (scheme, m)
        })
        .collect()
}

/// Geometric mean of positive values.
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return f64::NAN;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// One row of a `BENCH_*.json` report — the stable cross-run schema
/// (`name`, `median_us`, `iterations`) that trend tooling consumes.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Benchmark name.
    pub name: String,
    /// Median latency over the iterations, microseconds.
    pub median_us: f64,
    /// Number of measured iterations behind the median.
    pub iterations: usize,
}

/// Median of a sample; averages the middle pair for even sizes.
pub fn median_us(mut samples: Vec<f64>) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Renders rows as a `BENCH_*.json` document: a JSON array of
/// `{"name", "median_us", "iterations"}` objects, one per line.
pub fn bench_json(rows: &[BenchRow]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"name\":\"{}\",\"median_us\":{:.2},\"iterations\":{}}}",
                r.name.replace('"', "\\\""),
                r.median_us,
                r.iterations
            )
        })
        .collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

/// Parses a `BENCH_*.json` document produced by [`bench_json`] back into
/// rows. Hand-rolled for the one fixed schema so the harness needs no
/// JSON dependency; tolerant of whitespace but not of schema drift.
///
/// # Errors
/// Returns a message naming the malformed line.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchRow>, String> {
    fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\":");
        let start = line
            .find(&pat)
            .ok_or_else(|| format!("missing {key:?} in {line:?}"))?
            + pat.len();
        let rest = &line[start..];
        let end = rest
            .find([',', '}'])
            .ok_or_else(|| format!("unterminated {key:?} in {line:?}"))?;
        Ok(rest[..end].trim())
    }
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue; // array brackets / blank lines
        }
        let name = field(line, "name")?.trim_matches('"').replace("\\\"", "\"");
        let median_us: f64 = field(line, "median_us")?
            .parse()
            .map_err(|e| format!("bad median_us in {line:?}: {e}"))?;
        let iterations: usize = field(line, "iterations")?
            .parse()
            .map_err(|e| format!("bad iterations in {line:?}: {e}"))?;
        rows.push(BenchRow {
            name,
            median_us,
            iterations,
        });
    }
    Ok(rows)
}

/// One benchmark's baseline-vs-fresh comparison from [`compare_bench`].
#[derive(Debug, Clone)]
pub struct BenchDelta {
    /// Benchmark name.
    pub name: String,
    /// Committed baseline median (µs).
    pub baseline_us: f64,
    /// Freshly measured median (µs).
    pub fresh_us: f64,
    /// `fresh / baseline`; > 1 is a slowdown.
    pub ratio: f64,
    /// True when the slowdown exceeds the tolerance.
    pub regressed: bool,
}

/// Compares fresh medians against a committed baseline, flagging every
/// benchmark whose median regressed by more than `tolerance` (0.15 =
/// 15%). Benchmarks present on only one side are skipped — a renamed or
/// new benchmark is a review question, not a perf regression.
pub fn compare_bench(baseline: &[BenchRow], fresh: &[BenchRow], tolerance: f64) -> Vec<BenchDelta> {
    let base: HashMap<&str, f64> = baseline
        .iter()
        .map(|r| (r.name.as_str(), r.median_us))
        .collect();
    fresh
        .iter()
        .filter_map(|r| {
            let baseline_us = *base.get(r.name.as_str())?;
            let ratio = if baseline_us > 0.0 {
                r.median_us / baseline_us
            } else {
                f64::INFINITY
            };
            Some(BenchDelta {
                name: r.name.clone(),
                baseline_us,
                fresh_us: r.median_us,
                ratio,
                regressed: ratio > 1.0 + tolerance,
            })
        })
        .collect()
}

/// Writes a `BENCH_*.json` report into the workspace root (`file` is
/// the bare file name, e.g. `BENCH_compile.json`).
///
/// # Panics
/// Panics when the file cannot be written — a benchmark that cannot
/// record its result should fail loudly, not quietly succeed.
pub fn write_bench_report(file: &str, rows: &[BenchRow]) -> std::path::PathBuf {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file);
    std::fs::write(&path, bench_json(rows)).unwrap_or_else(|e| panic!("write {file}: {e}"));
    path
}

/// Formats microseconds human-readably.
pub fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.1}ms", us / 1e3)
    } else {
        format!("{us:.0}µs")
    }
}

/// The benchmarks of the harness preset.
pub fn benchmarks(cfg: &HarnessConfig) -> Vec<Benchmark> {
    hecate_apps::all_benchmarks(cfg.preset)
}

/// Convenience: the plaintext reference outputs of a benchmark.
pub fn reference_outputs(bench: &Benchmark) -> HashMap<String, Vec<f64>> {
    interpret(&bench.func, &bench.inputs).expect("inputs bound")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_compiler::Scheme;
    use hecate_ir::FunctionBuilder;

    fn tiny_bench() -> Benchmark {
        let mut b = FunctionBuilder::new("tiny", 8);
        let x = b.input_cipher("x");
        let sq = b.square(x);
        let c = b.splat(0.5);
        let y = b.mul(sq, c);
        b.output(y);
        let mut inputs = std::collections::HashMap::new();
        inputs.insert("x".to_string(), vec![0.5; 8]);
        Benchmark {
            name: "tiny".into(),
            func: b.finish(),
            inputs,
        }
    }

    fn tiny_cfg() -> HarnessConfig {
        let mut cfg = HarnessConfig::quick();
        cfg.degree = 128;
        cfg.waterlines = vec![22.0, 28.0];
        cfg
    }

    #[test]
    fn sweep_picks_a_feasible_configuration() {
        let bench = tiny_bench();
        let cfg = tiny_cfg();
        let s = sweep(&bench, Scheme::Hecate, &cfg).expect("feasible waterline");
        assert!(cfg.waterlines.contains(&s.best_waterline));
        assert!(s.simulated_rmse <= cfg.error_bound);
        assert!(s.estimated_us > 0.0);
    }

    #[test]
    fn measure_executes_the_winner() {
        let bench = tiny_bench();
        let cfg = tiny_cfg();
        let s = sweep(&bench, Scheme::Eva, &cfg).unwrap();
        let m = measure(&bench, &s, &cfg).unwrap();
        assert!(m.measured_us > 0.0);
        assert!(m.measured_rmse < 1e-2);
        assert_eq!(m.best_waterline, s.best_waterline);
    }

    #[test]
    fn run_benchmark_covers_all_schemes() {
        let bench = tiny_bench();
        let cfg = tiny_cfg();
        let results = run_benchmark(&bench, &cfg);
        assert_eq!(results.len(), 4);
        for (scheme, m) in results {
            assert!(m.is_some(), "{scheme} must produce a measurement");
        }
    }

    #[test]
    fn geomean_and_formatting() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
        assert_eq!(fmt_us(500.0), "500µs");
        assert_eq!(fmt_us(2_500.0), "2.5ms");
        assert_eq!(fmt_us(3_200_000.0), "3.20s");
    }

    #[test]
    fn harness_presets() {
        assert_eq!(HarnessConfig::quick().waterlines.len(), 6);
        assert_eq!(HarnessConfig::full().waterlines.len(), 36);
    }

    #[test]
    fn bench_json_roundtrips_through_parse() {
        let rows = vec![
            BenchRow {
                name: "SF".into(),
                median_us: 9696.49,
                iterations: 12,
            },
            BenchRow {
                name: "rot-fan8/hoisted".into(),
                median_us: 3530.07,
                iterations: 12,
            },
        ];
        let parsed = parse_bench_json(&bench_json(&rows)).expect("parses own output");
        assert_eq!(parsed.len(), 2);
        for (a, b) in rows.iter().zip(&parsed) {
            assert_eq!(a.name, b.name);
            assert!((a.median_us - b.median_us).abs() < 1e-9);
            assert_eq!(a.iterations, b.iterations);
        }
        assert!(parse_bench_json("[\n  {\"name\":\"x\"}\n]\n").is_err());
    }

    #[test]
    fn compare_bench_flags_only_real_regressions() {
        let base = vec![
            BenchRow {
                name: "a".into(),
                median_us: 100.0,
                iterations: 5,
            },
            BenchRow {
                name: "b".into(),
                median_us: 200.0,
                iterations: 5,
            },
            BenchRow {
                name: "gone".into(),
                median_us: 50.0,
                iterations: 5,
            },
        ];
        let fresh = vec![
            BenchRow {
                name: "a".into(),
                median_us: 114.0, // +14% — inside the 15% tolerance
                iterations: 5,
            },
            BenchRow {
                name: "b".into(),
                median_us: 232.0, // +16% — regression
                iterations: 5,
            },
            BenchRow {
                name: "new".into(),
                median_us: 1.0, // no baseline — skipped
                iterations: 5,
            },
        ];
        let deltas = compare_bench(&base, &fresh, 0.15);
        assert_eq!(deltas.len(), 2);
        assert!(!deltas[0].regressed);
        assert!(deltas[1].regressed);
        assert!((deltas[1].ratio - 1.16).abs() < 1e-9);
    }
}
