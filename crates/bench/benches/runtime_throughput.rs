//! Serving throughput of `hecate-runtime`: requests per second at 1, 2,
//! 4, and 8 workers over encrypted benchmark workloads with the plan
//! cache warm (the steady-state serving regime — compilation is paid
//! once per plan, off the measured path), plus the slot-batching study:
//! solo vs coalesced service of four tenants at the *same* ring degree.
//!
//! Emits `BENCH_throughput.json` next to the workspace root in the
//! stable report schema (`name`, `median_us`, `iterations`) consumed by
//! `bench_diff`, so throughput regressions gate CI exactly like compile
//! and runtime latency. Rows record the throughput-derived per-request
//! time (1e6 / req/s) in the latency column:
//!
//! - `workers/N` — worker-scaling rows at degree 512, run under a
//!   managed core budget of exactly N cores (kernels serial) so they
//!   isolate the sharded dequeue; on machines with 8+ cores the bench
//!   asserts the 8-worker row reaches at least 0.7x8 the 1-worker rate;
//! - `SF@4096/solo`, `SF@4096/batch4` (and HCD likewise) — one tenant
//!   per request vs four tenants packed into one ciphertext, both at
//!   degree 4096 so the comparison isolates amortization from parameter
//!   choice (a solo run at a smaller degree is a different security and
//!   precision point, not a fair baseline).
//!
//! The batching rows are also asserted in-process: coalesced service
//! must reach at least 2x the solo request rate at occupancy 4.
//!
//! The run doubles as the telemetry overhead gate: every request
//! crosses the instrumentation in the runtime, the cache, and the
//! executor, and the bench asserts that (a) the disabled span entry
//! points and (b) the always-on flight recorder's ring appends each
//! account for under 2% of a served request.

use hecate_apps::{benchmark, Benchmark, Preset};
use hecate_backend::exec::BackendOptions;
use hecate_bench::{write_bench_report, BenchRow};
use hecate_compiler::{CompileOptions, Scheme};
use hecate_runtime::{CoreBudget, Request, Runtime, RuntimeConfig};
use std::time::{Duration, Instant};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ROUNDS: usize = 12;

/// Worker scaling the 8-worker row must reach relative to 1 worker —
/// only asserted on machines with at least 8 cores (`bench_diff`
/// applies the same guard to the recorded rows in CI).
const SCALING_FLOOR: f64 = 0.7 * 8.0;

/// The batching study runs both sides at this one degree (2048 slots:
/// four 512-slot blocks hold the SF/HCD footprints with guard bands).
const BATCH_DEGREE: usize = 4096;
const BATCH_OCCUPANCY: usize = 4;
const BATCH_ROUNDS: usize = 3;

fn workloads() -> Vec<Benchmark> {
    ["SF", "HCD"]
        .iter()
        .map(|name| benchmark(name, Preset::Small).expect("known benchmark"))
        .collect()
}

fn options() -> CompileOptions {
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(512);
    opts
}

/// Requests per second over a warmed runtime with `workers` threads;
/// returns the measured request count alongside.
fn measure(workers: usize, benches: &[Benchmark]) -> (f64, usize) {
    let rt = Runtime::new(RuntimeConfig {
        workers,
        jobs_per_request: 1,
        // Budget exactly `workers` cores: kernels stay serial
        // (kernel_jobs = budget / workers = 1), so the rows isolate
        // request-level scaling of the sharded dequeue.
        core_budget: CoreBudget::Cores(workers),
        backend: BackendOptions {
            degree_override: Some(512),
            ..BackendOptions::default()
        },
        ..RuntimeConfig::default()
    });
    let opts = options();
    let mk = |session, bench: &Benchmark| Request {
        session,
        func: bench.func.clone(),
        scheme: Scheme::Pars,
        options: opts.clone(),
        inputs: bench.inputs.clone(),
        deadline: None,
        max_retries: 0,
    };
    // One tenant session per workload; warm the cache and the session
    // engines so the measurement sees only steady-state serving.
    let sessions: Vec<_> = benches.iter().map(|_| rt.open_session()).collect();
    let warm: Vec<Request> = benches
        .iter()
        .zip(&sessions)
        .map(|(b, &s)| mk(s, b))
        .collect();
    for r in rt.run_batch(warm) {
        r.expect("warmup request");
    }
    assert_eq!(rt.stats().compiles as usize, benches.len());

    let reqs: Vec<Request> = (0..ROUNDS)
        .flat_map(|_| benches.iter().zip(&sessions).map(|(b, &s)| mk(s, b)))
        .collect();
    let n = reqs.len();
    let t0 = Instant::now();
    for r in rt.run_batch(reqs) {
        r.expect("measured request");
    }
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(
        rt.stats().compiles as usize,
        benches.len(),
        "measured phase must be all cache hits"
    );
    rt.shutdown();
    (n as f64 / dt, n)
}

/// Requests per second serving four tenants of one workload at
/// `BATCH_DEGREE`, either solo (`max_batch` 1) or coalesced into packed
/// ciphertexts (`max_batch` = occupancy). One worker, so the coalescing
/// is deterministic and the comparison measures amortization alone.
fn measure_packed(bench: &Benchmark, max_batch: usize) -> (f64, usize) {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        max_batch,
        batch_window: Duration::from_millis(50),
        backend: BackendOptions {
            degree_override: Some(BATCH_DEGREE),
            ..BackendOptions::default()
        },
        ..RuntimeConfig::default()
    });
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(BATCH_DEGREE);
    let sessions: Vec<_> = (0..BATCH_OCCUPANCY).map(|_| rt.open_session()).collect();
    let mk = |session| Request {
        session,
        func: bench.func.clone(),
        scheme: Scheme::Pars,
        options: opts.clone(),
        inputs: bench.inputs.clone(),
        deadline: None,
        max_retries: 0,
    };
    // Warm one full round: compiles the plan and builds the solo session
    // engines (or the shared batch engine) off the measured path.
    for r in rt.run_batch(sessions.iter().map(|&s| mk(s)).collect()) {
        r.expect("warmup request");
    }
    let reqs: Vec<Request> = (0..BATCH_ROUNDS)
        .flat_map(|_| sessions.iter().map(|&s| mk(s)))
        .collect();
    let n = reqs.len();
    let t0 = Instant::now();
    for r in rt.run_batch(reqs) {
        let resp = r.expect("measured request");
        if max_batch > 1 {
            assert_eq!(
                resp.batch_occupancy, BATCH_OCCUPANCY,
                "measured requests must coalesce at full occupancy"
            );
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    rt.shutdown();
    (n as f64 / dt, n)
}

/// Upper-bounds the disabled tracer's share of one served request.
///
/// The instrumented path cannot be compiled out for comparison, so the
/// bound is computed directly: measure the per-call cost of a disabled
/// span (one relaxed atomic load; the attribute closure never runs),
/// multiply by the number of trace entry points a request crosses (one
/// per op plus a handful of lifecycle spans), and compare against the
/// measured per-request wall time.
fn assert_disabled_tracer_overhead(req_per_s: f64, max_ops: usize) {
    use hecate_telemetry::trace;
    assert!(!trace::enabled(), "tracing must be off during the bench");
    const CALLS: u64 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..CALLS {
        let mut span = trace::span_with("bench-noop", || vec![("i", i.into())]);
        span.attr("done", true.into());
    }
    let ns_per_span = t0.elapsed().as_nanos() as f64 / CALLS as f64;
    // exec-op per op, plus queue-wait/request/plan-cache/session-engine/
    // execute and slack for future lifecycle spans.
    let spans_per_req = max_ops as f64 + 8.0;
    let req_ns = 1e9 / req_per_s;
    let share = spans_per_req * ns_per_span / req_ns;
    println!(
        "  disabled tracer: {ns_per_span:.1}ns/span x {spans_per_req:.0} spans = {:.3}% of a request",
        share * 100.0
    );
    assert!(
        share < 0.02,
        "disabled tracer costs {:.2}% of a request (budget 2%)",
        share * 100.0
    );
}

/// Upper-bounds the always-on flight recorder's share of one served
/// request, by the same methodology as the disabled-tracer gate: the
/// per-call cost of a recorded span (attr closure runs, two ring
/// appends into the thread-local segment) times the entry points a
/// request crosses, against the measured per-request wall time. This is
/// the "recorder on forever in `--serve`" budget.
fn assert_recorder_overhead(req_per_s: f64, max_ops: usize) {
    use hecate_telemetry::{recorder, trace, RecorderConfig};
    assert!(!trace::enabled(), "tracing must be off during the bench");
    recorder::configure(&RecorderConfig::default());
    recorder::set_enabled(true);
    const CALLS: u64 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..CALLS {
        let mut span = trace::span_with("bench-recorded", || vec![("i", i.into())]);
        span.attr("done", true.into());
    }
    let ns_per_span = t0.elapsed().as_nanos() as f64 / CALLS as f64;
    recorder::set_enabled(false);
    recorder::clear();
    let spans_per_req = max_ops as f64 + 8.0;
    let req_ns = 1e9 / req_per_s;
    let share = spans_per_req * ns_per_span / req_ns;
    println!(
        "  flight recorder: {ns_per_span:.1}ns/span x {spans_per_req:.0} spans = {:.3}% of a request",
        share * 100.0
    );
    assert!(
        share < 0.02,
        "always-on recorder costs {:.2}% of a request (budget 2%)",
        share * 100.0
    );
}

fn main() {
    let benches = workloads();
    println!(
        "runtime throughput: {} workloads x {ROUNDS} rounds, warm cache",
        benches.len()
    );
    let mut rows = Vec::new();
    let mut baseline = 0.0;
    let mut speedup8 = 1.0;
    for workers in WORKER_COUNTS {
        let (rps, n) = measure(workers, &benches);
        if workers == 1 {
            baseline = rps;
        }
        if workers == 8 {
            speedup8 = rps / baseline;
        }
        println!(
            "  {workers} worker(s): {rps:.1} req/s ({:.3}x)",
            rps / baseline
        );
        rows.push(BenchRow {
            name: format!("workers/{workers}"),
            median_us: 1e6 / rps,
            iterations: n,
        });
    }
    // The scaling gate needs 8 cores to mean anything: on smaller
    // machines the 8 workers time-share and the ratio measures the OS
    // scheduler, not the dequeue path.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 8 {
        assert!(
            speedup8 >= SCALING_FLOOR,
            "8 workers reached only {speedup8:.2}x of 1 worker on a \
             {cores}-core machine (floor {SCALING_FLOOR:.1}x)"
        );
    } else {
        println!(
            "  scaling gate skipped: {cores} core(s) < 8 \
             (8-worker speedup measured {speedup8:.2}x)"
        );
    }
    let max_ops = benches.iter().map(|b| b.func.len()).max().unwrap_or(0);
    assert_disabled_tracer_overhead(baseline, max_ops);
    assert_recorder_overhead(baseline, max_ops);

    println!("slot batching: degree {BATCH_DEGREE}, occupancy {BATCH_OCCUPANCY}, 1 worker");
    for bench in &benches {
        let (solo_rps, solo_n) = measure_packed(bench, 1);
        let (batch_rps, batch_n) = measure_packed(bench, BATCH_OCCUPANCY);
        let speedup = batch_rps / solo_rps;
        println!(
            "  {}: solo {solo_rps:.1} req/s, batched {batch_rps:.1} req/s ({speedup:.2}x)",
            bench.name
        );
        rows.push(BenchRow {
            name: format!("{}@{BATCH_DEGREE}/solo", bench.name),
            median_us: 1e6 / solo_rps,
            iterations: solo_n,
        });
        rows.push(BenchRow {
            name: format!("{}@{BATCH_DEGREE}/batch{BATCH_OCCUPANCY}", bench.name),
            median_us: 1e6 / batch_rps,
            iterations: batch_n,
        });
        assert!(
            speedup >= 2.0,
            "{}: batched serving reached only {speedup:.2}x solo throughput \
             (needs >= 2x at occupancy {BATCH_OCCUPANCY})",
            bench.name
        );
    }

    let path = write_bench_report("BENCH_throughput.json", &rows);
    println!("wrote {}", path.display());
}
