//! Serving throughput of `hecate-runtime`: requests per second at 1, 2,
//! 4, and 8 workers over encrypted benchmark workloads, with the plan
//! cache warm (the steady-state serving regime — compilation is paid
//! once per plan, off the measured path).
//!
//! Emits `BENCH_throughput.json` next to the workspace root with the
//! per-worker-count throughput and the speedup over the single-worker
//! baseline. Speedups track the machine's core count; on a single-core
//! host all configurations converge. (Per-workload median latencies in
//! the stable report schema come from the `bench_runtime` binary.)
//!
//! The run doubles as the disabled-tracer overhead gate: every request
//! crosses the telemetry instrumentation in the runtime, the cache, and
//! the executor with tracing off, and the bench asserts that the
//! disabled span entry points account for under 2% of a served request.

use hecate_apps::{benchmark, Benchmark, Preset};
use hecate_backend::exec::BackendOptions;
use hecate_compiler::{CompileOptions, Scheme};
use hecate_runtime::{Request, Runtime, RuntimeConfig};
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ROUNDS: usize = 12;

fn workloads() -> Vec<Benchmark> {
    ["SF", "HCD"]
        .iter()
        .map(|name| benchmark(name, Preset::Small).expect("known benchmark"))
        .collect()
}

fn options() -> CompileOptions {
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(512);
    opts
}

/// Requests per second over a warmed runtime with `workers` threads.
fn measure(workers: usize, benches: &[Benchmark]) -> f64 {
    let rt = Runtime::new(RuntimeConfig {
        workers,
        jobs_per_request: 1,
        backend: BackendOptions {
            degree_override: Some(512),
            ..BackendOptions::default()
        },
        ..RuntimeConfig::default()
    });
    let opts = options();
    let mk = |session, bench: &Benchmark| Request {
        session,
        func: bench.func.clone(),
        scheme: Scheme::Pars,
        options: opts.clone(),
        inputs: bench.inputs.clone(),
        deadline: None,
        max_retries: 0,
    };
    // One tenant session per workload; warm the cache and the session
    // engines so the measurement sees only steady-state serving.
    let sessions: Vec<_> = benches.iter().map(|_| rt.open_session()).collect();
    let warm: Vec<Request> = benches
        .iter()
        .zip(&sessions)
        .map(|(b, &s)| mk(s, b))
        .collect();
    for r in rt.run_batch(warm) {
        r.expect("warmup request");
    }
    assert_eq!(rt.stats().compiles as usize, benches.len());

    let reqs: Vec<Request> = (0..ROUNDS)
        .flat_map(|_| benches.iter().zip(&sessions).map(|(b, &s)| mk(s, b)))
        .collect();
    let n = reqs.len();
    let t0 = Instant::now();
    for r in rt.run_batch(reqs) {
        r.expect("measured request");
    }
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(
        rt.stats().compiles as usize,
        benches.len(),
        "measured phase must be all cache hits"
    );
    rt.shutdown();
    n as f64 / dt
}

/// Upper-bounds the disabled tracer's share of one served request.
///
/// The instrumented path cannot be compiled out for comparison, so the
/// bound is computed directly: measure the per-call cost of a disabled
/// span (one relaxed atomic load; the attribute closure never runs),
/// multiply by the number of trace entry points a request crosses (one
/// per op plus a handful of lifecycle spans), and compare against the
/// measured per-request wall time.
fn assert_disabled_tracer_overhead(req_per_s: f64, max_ops: usize) {
    use hecate_telemetry::trace;
    assert!(!trace::enabled(), "tracing must be off during the bench");
    const CALLS: u64 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..CALLS {
        let mut span = trace::span_with("bench-noop", || vec![("i", i.into())]);
        span.attr("done", true.into());
    }
    let ns_per_span = t0.elapsed().as_nanos() as f64 / CALLS as f64;
    // exec-op per op, plus queue-wait/request/plan-cache/session-engine/
    // execute and slack for future lifecycle spans.
    let spans_per_req = max_ops as f64 + 8.0;
    let req_ns = 1e9 / req_per_s;
    let share = spans_per_req * ns_per_span / req_ns;
    println!(
        "  disabled tracer: {ns_per_span:.1}ns/span x {spans_per_req:.0} spans = {:.3}% of a request",
        share * 100.0
    );
    assert!(
        share < 0.02,
        "disabled tracer costs {:.2}% of a request (budget 2%)",
        share * 100.0
    );
}

fn main() {
    let benches = workloads();
    println!(
        "runtime throughput: {} workloads x {ROUNDS} rounds, warm cache",
        benches.len()
    );
    let mut results = Vec::new();
    for workers in WORKER_COUNTS {
        let rps = measure(workers, &benches);
        println!("  {workers} worker(s): {rps:.1} req/s");
        results.push((workers, rps));
    }
    let max_ops = benches.iter().map(|b| b.func.len()).max().unwrap_or(0);
    assert_disabled_tracer_overhead(results[0].1, max_ops);
    let baseline = results[0].1;
    let entries: Vec<String> = results
        .iter()
        .map(|(w, rps)| {
            format!(
                "{{\"workers\":{w},\"req_per_s\":{rps:.2},\"speedup\":{:.3}}}",
                rps / baseline
            )
        })
        .collect();
    let json = format!(
        "{{\"benchmark\":\"runtime_throughput\",\"workloads\":[\"SF\",\"HCD\"],\"rounds\":{ROUNDS},\"results\":[{}]}}\n",
        entries.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("wrote {path}");
}
