//! Serving throughput of `hecate-runtime`: requests per second at 1, 2,
//! 4, and 8 workers over encrypted benchmark workloads, with the plan
//! cache warm (the steady-state serving regime — compilation is paid
//! once per plan, off the measured path).
//!
//! Emits `BENCH_runtime.json` next to the workspace root with the
//! per-worker-count throughput and the speedup over the single-worker
//! baseline. Speedups track the machine's core count; on a single-core
//! host all configurations converge.

use hecate_apps::{benchmark, Benchmark, Preset};
use hecate_backend::exec::BackendOptions;
use hecate_compiler::{CompileOptions, Scheme};
use hecate_runtime::{Request, Runtime, RuntimeConfig};
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ROUNDS: usize = 12;

fn workloads() -> Vec<Benchmark> {
    ["SF", "HCD"]
        .iter()
        .map(|name| benchmark(name, Preset::Small).expect("known benchmark"))
        .collect()
}

fn options() -> CompileOptions {
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(512);
    opts
}

/// Requests per second over a warmed runtime with `workers` threads.
fn measure(workers: usize, benches: &[Benchmark]) -> f64 {
    let rt = Runtime::new(RuntimeConfig {
        workers,
        jobs_per_request: 1,
        backend: BackendOptions {
            degree_override: Some(512),
            ..BackendOptions::default()
        },
    });
    let opts = options();
    let mk = |session, bench: &Benchmark| Request {
        session,
        func: bench.func.clone(),
        scheme: Scheme::Pars,
        options: opts.clone(),
        inputs: bench.inputs.clone(),
    };
    // One tenant session per workload; warm the cache and the session
    // engines so the measurement sees only steady-state serving.
    let sessions: Vec<_> = benches.iter().map(|_| rt.open_session()).collect();
    let warm: Vec<Request> = benches
        .iter()
        .zip(&sessions)
        .map(|(b, &s)| mk(s, b))
        .collect();
    for r in rt.run_batch(warm) {
        r.expect("warmup request");
    }
    assert_eq!(rt.stats().compiles as usize, benches.len());

    let reqs: Vec<Request> = (0..ROUNDS)
        .flat_map(|_| benches.iter().zip(&sessions).map(|(b, &s)| mk(s, b)))
        .collect();
    let n = reqs.len();
    let t0 = Instant::now();
    for r in rt.run_batch(reqs) {
        r.expect("measured request");
    }
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(
        rt.stats().compiles as usize,
        benches.len(),
        "measured phase must be all cache hits"
    );
    rt.shutdown();
    n as f64 / dt
}

fn main() {
    let benches = workloads();
    println!(
        "runtime throughput: {} workloads x {ROUNDS} rounds, warm cache",
        benches.len()
    );
    let mut results = Vec::new();
    for workers in WORKER_COUNTS {
        let rps = measure(workers, &benches);
        println!("  {workers} worker(s): {rps:.1} req/s");
        results.push((workers, rps));
    }
    let baseline = results[0].1;
    let entries: Vec<String> = results
        .iter()
        .map(|(w, rps)| {
            format!(
                "{{\"workers\":{w},\"req_per_s\":{rps:.2},\"speedup\":{:.3}}}",
                rps / baseline
            )
        })
        .collect();
    let json = format!(
        "{{\"benchmark\":\"runtime_throughput\",\"workloads\":[\"SF\",\"HCD\"],\"rounds\":{ROUNDS},\"results\":[{}]}}\n",
        entries.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    std::fs::write(path, &json).expect("write BENCH_runtime.json");
    println!("wrote {path}");
}
