//! Criterion microbenchmarks of the arithmetic substrate: NTT transforms
//! and the key-switch primitive, the two kernels that dominate every
//! homomorphic operation's cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use hecate_ckks::keys::key_switch;
use hecate_ckks::{CkksParams, KeyGenerator};
use hecate_math::ntt::NttTable;
use hecate_math::poly::RnsPoly;
use hecate_math::prime::generate_ntt_primes;
use hecate_math::rng::Xoshiro256;
use std::hint::black_box;

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt");
    for n in [1024usize, 4096] {
        let q = generate_ntt_primes(50, n, 1, &[])[0];
        let table = NttTable::new(q, n);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let data: Vec<u64> = (0..n).map(|_| rng.next_below(q)).collect();
        group.bench_function(format!("forward_n{n}"), |b| {
            b.iter(|| {
                let mut a = data.clone();
                table.forward(&mut a);
                black_box(a)
            })
        });
        group.bench_function(format!("backward_n{n}"), |b| {
            b.iter(|| {
                let mut a = data.clone();
                table.backward(&mut a);
                black_box(a)
            })
        });
    }
    group.finish();
}

fn bench_keyswitch(c: &mut Criterion) {
    let mut group = c.benchmark_group("keyswitch");
    for chain_len in [2usize, 4, 6] {
        let params = CkksParams::new(1024, 40, 40, chain_len - 1, false).unwrap();
        let mut kg = KeyGenerator::new(&params, 3);
        let rk = kg.relin_key(chain_len);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let coeffs: Vec<i64> = (0..1024).map(|_| rng.next_below(1000) as i64).collect();
        let d = RnsPoly::from_signed_coeffs(params.basis(), chain_len, &coeffs);
        group.bench_function(format!("relin_c{chain_len}"), |b| {
            b.iter(|| black_box(key_switch(&d, &rk, &params)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ntt, bench_keyswitch
}
criterion_main!(benches);
