//! Criterion benchmark of end-to-end encrypted execution of compiled
//! programs: EVA vs HECATE on the Sobel filter (the Fig. 7 comparison as
//! a repeatable microbenchmark; the `fig7` binary covers all benchmarks).

use criterion::{criterion_group, criterion_main, Criterion};
use hecate_apps::{benchmark, Preset};
use hecate_backend::exec::{execute_encrypted, BackendOptions};
use hecate_compiler::{compile, CompileOptions, Scheme};
use std::hint::black_box;

fn bench_encrypted(c: &mut Criterion) {
    let bench = benchmark("SF", Preset::Small).unwrap();
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(512);
    let bopts = BackendOptions {
        degree_override: Some(512),
        seed: 5,
        ..BackendOptions::default()
    };

    let mut group = c.benchmark_group("encrypted_sobel");
    for scheme in [Scheme::Eva, Scheme::Hecate] {
        let prog = compile(&bench.func, scheme, &opts).unwrap();
        group.bench_function(scheme.to_string(), |b| {
            b.iter(|| black_box(execute_encrypted(&prog, &bench.inputs, &bopts).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encrypted
}
criterion_main!(benches);
