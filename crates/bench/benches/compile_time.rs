//! Criterion benchmarks of compilation itself: how long EVA / PARS / SMSE
//! / HECATE take per benchmark (the paper reports HECATE's worst case at
//! 340 s on LeNet, against 649 h for the naïve exploration).

use criterion::{criterion_group, criterion_main, Criterion};
use hecate_apps::{all_benchmarks, Preset};
use hecate_compiler::{compile, CompileOptions, Scheme};
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let benches = all_benchmarks(Preset::Small);
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(512);

    let mut group = c.benchmark_group("compile");
    for bench in benches
        .iter()
        .filter(|b| b.name == "SF" || b.name == "LR E2")
    {
        for scheme in [Scheme::Eva, Scheme::Pars, Scheme::Hecate] {
            group.bench_function(format!("{}/{scheme}", bench.name), |b| {
                b.iter(|| black_box(compile(&bench.func, scheme, &opts).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile
}
criterion_main!(benches);
