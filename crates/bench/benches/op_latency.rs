//! Criterion microbenchmarks of the homomorphic operations at different
//! rescaling levels — the latency structure behind §II-C.

use criterion::{criterion_group, criterion_main, Criterion};
use hecate_ckks::{CkksEncoder, CkksParams, Encryptor, EvalKeys, Evaluator, KeyGenerator};
use std::hint::black_box;

struct Fixture {
    eval: Evaluator,
    cts: Vec<hecate_ckks::Ciphertext>,
    pts: Vec<hecate_ckks::Plaintext>,
}

fn fixture(degree: usize, chain_len: usize) -> Fixture {
    let params = CkksParams::new(degree, 40, 40, chain_len - 1, false).unwrap();
    let encoder = CkksEncoder::new(&params);
    let mut kg = KeyGenerator::new(&params, 1);
    let pk = kg.public_key();
    let relin: Vec<usize> = (1..=chain_len).collect();
    let rots: Vec<(usize, usize)> = (1..=chain_len).map(|c| (1, c)).collect();
    let keys = EvalKeys::generate(&mut kg, &relin, &rots);
    let mut encryptor = Encryptor::new(&params, pk, 2);
    let data: Vec<f64> = (0..params.slots()).map(|i| (i % 9) as f64 * 0.1).collect();
    let mut cts = Vec::new();
    let mut pts = Vec::new();
    for level in 0..chain_len {
        let pt = encoder.encode(&data, 30.0, level).unwrap();
        cts.push(encryptor.encrypt(&pt));
        pts.push(pt);
    }
    Fixture {
        eval: Evaluator::new(&params, keys),
        cts,
        pts,
    }
}

fn bench_ops(c: &mut Criterion) {
    let degree = 1024;
    let chain_len = 6;
    let f = fixture(degree, chain_len);

    let mut group = c.benchmark_group(format!("ops_n{degree}"));
    for level in [0usize, 2, 4] {
        let ct = &f.cts[level];
        let pt = &f.pts[level];
        group.bench_function(format!("mul_cc_l{level}"), |b| {
            b.iter(|| black_box(f.eval.mul(ct, ct).unwrap()))
        });
        group.bench_function(format!("mul_cp_l{level}"), |b| {
            b.iter(|| black_box(f.eval.mul_plain(ct, pt).unwrap()))
        });
        group.bench_function(format!("add_cc_l{level}"), |b| {
            b.iter(|| black_box(f.eval.add(ct, ct).unwrap()))
        });
        group.bench_function(format!("rotate_l{level}"), |b| {
            b.iter(|| black_box(f.eval.rotate(ct, 1).unwrap()))
        });
        let prod = f.eval.mul(ct, ct).unwrap();
        group.bench_function(format!("rescale_l{level}"), |b| {
            b.iter(|| black_box(f.eval.rescale(&prod).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ops
}
criterion_main!(benches);
