//! Noise-simulating execution: fast RMS-error estimation without
//! encryption.
//!
//! For large benchmarks (LeNet runs thousands of operations), measuring the
//! error of every (waterline × scheme) configuration under real encryption
//! is expensive. This executor tracks each value's plaintext slots plus a
//! first-order variance of its decoded-domain noise, using the standard
//! CKKS noise heuristics:
//!
//! - encoding rounds coefficients to integers: variance `N/12` in the
//!   coefficient domain, `/scale²` decoded;
//! - fresh encryption adds `≈ 2N·σ²` of RLWE noise (σ² = 10.5, CBD(21));
//! - `ct×ct` contributes `m₁²σ₂² + m₂²σ₁²` plus key-switch noise;
//! - `rescale` preserves decoded noise and adds a rounding term at the new
//!   scale; `modswitch` is exact in RNS.
//!
//! The estimate is validated against real encrypted runs in the integration
//! tests (same order of magnitude), which is all the waterline sweep's
//! error filter needs.

use hecate_compiler::CompiledProgram;
use hecate_ir::{Op, ValueId};
use std::collections::HashMap;

/// RLWE noise variance of CBD(21).
const SIGMA2: f64 = 10.5;

/// Decoded-domain variance of encoding (integer rounding) at a scale.
fn encode_var(n: f64, scale_bits: f64) -> f64 {
    (n / 12.0) / (2.0f64).powf(2.0 * scale_bits)
}

/// Decoded-domain variance of a freshly encrypted value at a scale.
fn fresh_var(n: f64, scale_bits: f64) -> f64 {
    (2.0 * n * SIGMA2) / (2.0f64).powf(2.0 * scale_bits) + encode_var(n, scale_bits)
}

/// Key-switch noise (relinearization / rotation) decoded at a scale.
fn ks_var(n: f64, scale_bits: f64) -> f64 {
    (n * n * SIGMA2 / 6.0) / (2.0f64).powf(2.0 * scale_bits)
}

/// Result of a simulated run.
#[derive(Debug)]
pub struct SimulatedRun {
    /// Noiseless outputs (reference semantics).
    pub outputs: HashMap<String, Vec<f64>>,
    /// Estimated RMS error per output.
    pub rms_error: HashMap<String, f64>,
}

/// The simulator's per-operation state: the noiseless plaintext slots a
/// value holds and the first-order variance of its decoded-domain noise.
/// [`simulate_ops`] exposes one of these per operation so the audit
/// driver can compare a decrypt probe at *any* op against its predicted
/// error, not just at the outputs.
#[derive(Clone, Debug)]
pub struct SimVal {
    /// Noiseless reference slots (the first `vec_size` of them).
    pub values: Vec<f64>,
    /// Decoded-domain noise variance per slot.
    pub var: f64,
}

impl SimVal {
    /// Predicted decoded-domain RMS error of this value.
    pub fn predicted_rms(&self) -> f64 {
        self.var.sqrt()
    }
}

fn mean_sq(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64
}

/// Simulates a compiled program at ring degree `degree`, returning outputs
/// and estimated RMS errors.
///
/// # Panics
/// Panics if an input binding is missing (callers validate inputs first).
pub fn simulate(
    prog: &CompiledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    degree: usize,
) -> SimulatedRun {
    let sims = simulate_ops(prog, inputs, degree);
    let mut outputs = HashMap::new();
    let mut rms = HashMap::new();
    for (name, v) in prog.func.outputs() {
        let s = &sims[v.index()];
        outputs.insert(name.clone(), s.values.clone());
        rms.insert(name.clone(), s.predicted_rms());
    }
    SimulatedRun {
        outputs,
        rms_error: rms,
    }
}

/// Like [`simulate`], but returns the full per-operation table: the
/// noiseless plaintext slots and predicted noise variance of *every*
/// value, in operation order. This is what `hecatec --audit` diffs
/// against intermediate decrypt probes.
///
/// # Panics
/// Panics if an input binding is missing (callers validate inputs first).
pub fn simulate_ops(
    prog: &CompiledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    degree: usize,
) -> Vec<SimVal> {
    let n = degree as f64;
    let w = prog.func.vec_size;
    let encode_var = |scale_bits: f64| encode_var(n, scale_bits);
    let fresh_var = |scale_bits: f64| fresh_var(n, scale_bits);
    // Key-switch noise (relin / rotate), decoded at the operand scale:
    // digits of magnitude q/2 times RLWE noise, divided by the special
    // prime — roughly N·σ² in the coefficient domain.
    let ks_var = |scale_bits: f64| ks_var(n, scale_bits);

    let mut vals: Vec<SimVal> = Vec::with_capacity(prog.func.len());
    let scale_of = |v: &ValueId| prog.types[v.index()].scale().unwrap_or(0.0);

    for (i, op) in prog.func.ops().iter().enumerate() {
        let ty = prog.types[i];
        let get = |v: &ValueId| vals[v.index()].clone();
        let sv = match op {
            Op::Input { name } => {
                let mut data = inputs
                    .get(name)
                    .unwrap_or_else(|| panic!("no binding for input '{name}'"))
                    .clone();
                data.resize(w, 0.0);
                SimVal {
                    values: data,
                    var: fresh_var(ty.scale().expect("cipher input")),
                }
            }
            Op::Const { data } => SimVal {
                values: (0..w).map(|k| data.at(k)).collect(),
                var: 0.0,
            },
            Op::Encode {
                value, scale_bits, ..
            } => {
                let src = get(value);
                SimVal {
                    values: src.values,
                    var: encode_var(*scale_bits),
                }
            }
            Op::Add(a, b) | Op::Sub(a, b) => {
                let (sa, sb) = (get(a), get(b));
                let vals_out: Vec<f64> = sa
                    .values
                    .iter()
                    .zip(&sb.values)
                    .map(|(x, y)| {
                        if matches!(op, Op::Add(..)) {
                            x + y
                        } else {
                            x - y
                        }
                    })
                    .collect();
                SimVal {
                    values: vals_out,
                    var: sa.var + sb.var,
                }
            }
            Op::Mul(a, b) => {
                let (sa, sb) = (get(a), get(b));
                let vals_out: Vec<f64> = sa
                    .values
                    .iter()
                    .zip(&sb.values)
                    .map(|(x, y)| x * y)
                    .collect();
                let both_cipher =
                    prog.types[a.index()].is_cipher() && prog.types[b.index()].is_cipher();
                let mut var = mean_sq(&sa.values) * sb.var + mean_sq(&sb.values) * sa.var;
                if both_cipher {
                    var += ks_var(ty.scale().expect("cipher result"));
                }
                SimVal {
                    values: vals_out,
                    var,
                }
            }
            Op::Negate(v) => {
                let s = get(v);
                SimVal {
                    values: s.values.iter().map(|x| -x).collect(),
                    var: s.var,
                }
            }
            Op::Rotate { value, step } => {
                let s = get(value);
                let rotated: Vec<f64> = (0..w).map(|k| s.values[(k + step) % w]).collect();
                SimVal {
                    values: rotated,
                    var: s.var + ks_var(scale_of(value)),
                }
            }
            Op::Rescale(v) => {
                let s = get(v);
                SimVal {
                    values: s.values,
                    var: s.var + encode_var(ty.scale().expect("cipher")) * n / 3.0,
                }
            }
            Op::ModSwitch(v) => get(v),
            Op::Upscale { value, .. } => {
                // Multiplying by an exact power-of-two constant adds no
                // noise beyond the (integer-scale) encoding, which is exact.
                get(value)
            }
            Op::Downscale(v) => {
                let s = get(v);
                SimVal {
                    values: s.values,
                    var: s.var + encode_var(ty.scale().expect("cipher")) * n / 3.0,
                }
            }
        };
        debug_assert_eq!(vals.len(), i);
        vals.push(sv);
    }
    vals
}

/// The largest estimated RMS error across all outputs.
pub fn max_rms_error(run: &SimulatedRun) -> f64 {
    run.rms_error.values().fold(0.0, |m, v| m.max(*v))
}

/// Online noise-budget tracking for the encrypted executor.
///
/// The monitor advances the same first-order variance model as
/// [`simulate`], but online, one operation at a time, without seeing the
/// plaintext: where [`simulate`] multiplies by the actual message
/// mean-squares, the monitor bounds them by `msq_bound` (CKKS practice
/// normalizes inputs to roughly unit magnitude). The executor asks after
/// every operation whether the tracked RMS still fits the budget; if not,
/// it aborts with `BudgetExhausted` *before* a garbage decryption.
#[derive(Debug, Clone)]
pub struct NoiseMonitor {
    n: f64,
    /// Assumed per-slot message mean-square bound.
    msq_bound: f64,
    /// Worst-block concentration multiplier applied to every injected
    /// noise term (fresh encryption, encoding, key-switch, rescale
    /// rounding). `1.0` models the whole-ring average; a slot-batched run
    /// sets it to the occupancy, because rounding noise is white in the
    /// coefficient domain but its slot-domain energy fluctuates block to
    /// block — and a batched verdict rests on the *worst* tenant's block,
    /// not the ring-wide mean.
    conc: f64,
    vars: HashMap<usize, f64>,
}

impl NoiseMonitor {
    /// A monitor for a run at ring degree `degree`.
    pub fn new(degree: usize) -> Self {
        NoiseMonitor {
            n: degree as f64,
            msq_bound: 1.0,
            conc: 1.0,
            vars: HashMap::new(),
        }
    }

    /// Overrides the message magnitude bound (mean-square per slot).
    pub fn with_message_bound(mut self, msq_bound: f64) -> Self {
        self.msq_bound = msq_bound;
        self
    }

    /// Overrides the worst-block noise concentration multiplier (variance
    /// domain, so predicted RMS grows by its square root).
    pub fn with_noise_concentration(mut self, conc: f64) -> Self {
        self.conc = conc;
        self
    }

    /// Advances the model across op `i` and returns the tracked variance
    /// of its result.
    pub fn record(&mut self, prog: &CompiledProgram, i: usize) -> f64 {
        let op = &prog.func.ops()[i];
        let ty = prog.types[i];
        let get = |v: &ValueId| self.vars.get(&v.index()).copied().unwrap_or(0.0);
        let var = match op {
            Op::Input { .. } => self.conc * fresh_var(self.n, ty.scale().unwrap_or(0.0)),
            Op::Const { .. } => 0.0,
            Op::Encode { scale_bits, .. } => self.conc * encode_var(self.n, *scale_bits),
            Op::Add(a, b) | Op::Sub(a, b) => get(a) + get(b),
            Op::Mul(a, b) => {
                let both_cipher =
                    prog.types[a.index()].is_cipher() && prog.types[b.index()].is_cipher();
                let mut v = self.msq_bound * (get(a) + get(b));
                if both_cipher {
                    v += self.conc * ks_var(self.n, ty.scale().unwrap_or(0.0));
                }
                v
            }
            Op::Negate(v) => get(v),
            Op::Rotate { value, .. } => {
                get(value)
                    + self.conc * ks_var(self.n, prog.types[value.index()].scale().unwrap_or(0.0))
            }
            Op::Rescale(v) | Op::Downscale(v) => {
                get(v) + self.conc * encode_var(self.n, ty.scale().unwrap_or(0.0)) * self.n / 3.0
            }
            Op::ModSwitch(v) | Op::Upscale { value: v, .. } => get(v),
        };
        self.vars.insert(i, var);
        var
    }

    /// Adds externally observed variance at value `i` (used by the fault
    /// injector to make physical corruption visible to the model).
    pub fn inject(&mut self, i: usize, extra_var: f64) {
        *self.vars.entry(i).or_insert(0.0) += extra_var;
    }

    /// The tracked RMS noise of value `i` (0 if untracked).
    pub fn rms(&self, i: usize) -> f64 {
        self.vars.get(&i).copied().unwrap_or(0.0).sqrt()
    }
}

/// One row of the precision ledger: everything the executor knows about
/// the noise budget of one executed cipher operation.
///
/// All quantities are in the decoded domain and log2 ("bits") where
/// noted. The three derived fields answer the three questions an operator
/// asks about precision: how loud is the noise (`predicted_rms`), how far
/// is the scale above the waterline that guarantees output accuracy
/// (`margin_bits`), and how much modulus headroom is left at this level
/// (`budget_bits`).
#[derive(Debug, Clone)]
pub struct LedgerEntry {
    /// Operation index in the compiled program.
    pub op: usize,
    /// Operation mnemonic (`mul`, `rescale`, …).
    pub mnemonic: &'static str,
    /// Rescaling level of the result.
    pub level: usize,
    /// Declared scale of the result, log2 bits.
    pub scale_bits: f64,
    /// Predicted decoded-domain RMS noise of the result (the
    /// [`NoiseMonitor`] model: message magnitudes bounded by 1).
    pub predicted_rms: f64,
    /// Scale-vs-waterline margin in bits: `scale − S_w`. Non-negative
    /// for every well-formed plan (verifier invariant C2); negative means
    /// the plan no longer honors its waterline.
    pub margin_bits: f64,
    /// Remaining modulus budget at this value's level, in bits: the
    /// nominal active-prefix modulus (`q0 + S_f·(chain_len−1−level)`)
    /// minus the value's scale. This is the headroom future rescales and
    /// upscales draw from.
    pub budget_bits: f64,
}

/// A per-run ledger of predicted noise, waterline margin, and modulus
/// budget for every executed cipher operation.
///
/// The ledger advances the same online model as [`NoiseMonitor`] (it owns
/// one) and additionally materializes one [`LedgerEntry`] per cipher op,
/// which the executor emits as `precision` trace marks, folds into the
/// global precision metric family, and the audit driver joins with
/// decrypt probes. Recording is pure bookkeeping over the compiled types
/// — it never touches ciphertext bits, which is what keeps audited and
/// unaudited runs bit-identical.
#[derive(Debug)]
pub struct NoiseLedger {
    monitor: NoiseMonitor,
    waterline: f64,
    q0_bits: f64,
    sf_bits: f64,
    chain_len: usize,
    entries: Vec<LedgerEntry>,
    min_margin_bits: f64,
}

impl NoiseLedger {
    /// A ledger for one run of `prog` at ring degree `degree`.
    pub fn new(prog: &CompiledProgram, degree: usize) -> Self {
        NoiseLedger::with_occupancy(prog, degree, 1)
    }

    /// A ledger for a slot-batched run serving `occupancy` tenants from
    /// one ciphertext. Packed slots still hold roughly unit-magnitude
    /// messages, but the model bounds the per-slot message mean-square by
    /// the occupancy so multiplicative noise growth stays conservative
    /// when guard bands carry smeared neighbour data, and injected noise
    /// terms carry a worst-block concentration multiplier (a batched
    /// verdict rests on the noisiest tenant's block, not the ring-wide
    /// mean). Occupancy 1 is exactly [`NoiseLedger::new`].
    pub fn with_occupancy(prog: &CompiledProgram, degree: usize, occupancy: usize) -> Self {
        let occ = occupancy.max(1) as f64;
        NoiseLedger {
            monitor: NoiseMonitor::new(degree)
                .with_message_bound(occ)
                .with_noise_concentration(occ),
            waterline: prog.cfg.waterline,
            q0_bits: prog.params.q0_bits as f64,
            sf_bits: prog.params.sf_bits as f64,
            chain_len: prog.params.chain_len,
            entries: Vec::new(),
            min_margin_bits: f64::INFINITY,
        }
    }

    /// Nominal modulus bits active at `level`:
    /// `q0 + S_f·(chain_len−1−level)`.
    pub fn modulus_bits_at(&self, level: usize) -> f64 {
        self.q0_bits + self.sf_bits * (self.chain_len - 1).saturating_sub(level) as f64
    }

    /// Advances the noise model across op `i` (plus any fault-injected
    /// variance) and, when the result is a ciphertext, appends and
    /// returns its ledger entry. Plain and free values advance the model
    /// only, so downstream cipher entries still see their variance.
    pub fn record(
        &mut self,
        prog: &CompiledProgram,
        i: usize,
        injected_var: f64,
    ) -> Option<&LedgerEntry> {
        self.monitor.record(prog, i);
        if injected_var > 0.0 {
            self.monitor.inject(i, injected_var);
        }
        let ty = prog.types[i];
        if !ty.is_cipher() {
            return None;
        }
        let scale_bits = ty.scale().unwrap_or(0.0);
        let level = ty.level().unwrap_or(0);
        let margin_bits = scale_bits - self.waterline;
        self.min_margin_bits = self.min_margin_bits.min(margin_bits);
        self.entries.push(LedgerEntry {
            op: i,
            mnemonic: prog.func.ops()[i].mnemonic(),
            level,
            scale_bits,
            predicted_rms: self.monitor.rms(i),
            margin_bits,
            budget_bits: self.modulus_bits_at(level) - scale_bits,
        });
        self.entries.last()
    }

    /// Every recorded entry, in execution order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// The tightest waterline margin recorded so far (infinite before the
    /// first cipher op).
    pub fn min_margin_bits(&self) -> f64 {
        self.min_margin_bits
    }
}
