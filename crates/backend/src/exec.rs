//! Encrypted execution of compiled programs on the RNS-CKKS backend.
//!
//! The executor lowers a [`CompiledProgram`] onto [`hecate_ckks`]: it
//! builds the selected parameter set, generates exactly the evaluation
//! keys the program needs, encrypts the inputs, interprets the IR with
//! per-operation wall-clock timing, and decrypts the outputs.
//!
//! Two conventions matter:
//!
//! - **Nominal scales.** Compiler scales are nominal log2 bits. After each
//!   `rescale`, the actual scale differs from nominal by
//!   `S_f − log2(q_dropped)` (a ~2⁻²⁰ relative offset); the executor
//!   re-declares the nominal scale, exactly as EVA does on SEAL, and the
//!   offset is absorbed into the measured error.
//! - **Replication.** A program with logical vector width `w` runs on a
//!   ring with `N/2 ≥ w` slots by replicating every input and constant
//!   `N/2 / w` times. Cyclic rotation of a periodic vector rotates every
//!   window, so IR rotation semantics are preserved for any power-of-two
//!   `w` dividing the slot count.

use crate::fault::FaultPlan;
use crate::liveness::last_uses;
use crate::noise::NoiseMonitor;
use hecate_ckks::encoder::EncodeError;
use hecate_ckks::eval::EvalError;
use hecate_ckks::params::ParamsError;
use hecate_ckks::{
    Ciphertext, CkksEncoder, CkksParams, Decryptor, Encryptor, EvalKeys, Evaluator, KeyGenerator,
    Plaintext,
};
use hecate_compiler::CompiledProgram;
use hecate_ir::{Op, ValueId};
use std::collections::HashMap;
use std::time::Instant;

/// Backend execution options.
#[derive(Debug, Clone)]
pub struct BackendOptions {
    /// Run at this ring degree instead of the compiled (security-selected)
    /// one — the reduced-scale mode used by default in the benchmark
    /// harness.
    pub degree_override: Option<usize>,
    /// Seed for key generation and encryption randomness.
    pub seed: u64,
    /// Runtime guards (metadata checks, representation validation, noise
    /// monitoring).
    pub guard: GuardOptions,
    /// Fault to inject, for testing the guards. `None` in normal runs.
    pub fault: Option<FaultPlan>,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions {
            degree_override: None,
            seed: 0xC0FFEE,
            guard: GuardOptions::default(),
            fault: None,
        }
    }
}

/// Which runtime guards the executor runs after every operation.
#[derive(Debug, Clone)]
pub struct GuardOptions {
    /// Check each ciphertext's declared scale, level, and RNS prefix
    /// against the compiled plan's types (cheap; on by default).
    pub metadata_checks: bool,
    /// Scan every residue row of each result for values outside its
    /// prime's range (an `O(N·prefix)` pass per op; off by default).
    pub validate_repr: bool,
    /// Track the noise budget with a [`NoiseMonitor`] and abort with
    /// [`ExecError::BudgetExhausted`] once the modeled RMS noise of any
    /// value exceeds this bound. `None` disables monitoring.
    pub max_rms: Option<f64>,
}

impl Default for GuardOptions {
    fn default() -> Self {
        GuardOptions {
            metadata_checks: true,
            validate_repr: false,
            max_rms: None,
        }
    }
}

/// Guards with everything enabled (as the fault-injection suite runs).
impl GuardOptions {
    /// All guards on, with the given noise budget (RMS bound).
    pub fn strict(max_rms: f64) -> Self {
        GuardOptions {
            metadata_checks: true,
            validate_repr: true,
            max_rms: Some(max_rms),
        }
    }
}

/// Errors from encrypted execution.
#[derive(Debug)]
pub enum ExecError {
    /// Parameter construction failed.
    Params(ParamsError),
    /// Encoding failed.
    Encode(EncodeError),
    /// A homomorphic operation failed (indicates a compiler bug).
    Eval {
        /// The operation index.
        at: usize,
        /// The underlying evaluator error.
        source: EvalError,
    },
    /// The program's vector width does not fit or divide the slot count.
    BadVectorWidth {
        /// Logical width.
        vec_size: usize,
        /// Available slots.
        slots: usize,
    },
    /// An input binding is missing.
    MissingInput {
        /// The unbound name.
        name: String,
    },
    /// A runtime guard found ciphertext state inconsistent with the
    /// compiled plan (wrong scale/level/prefix or an invalid residue).
    Guard {
        /// The operation index at which the check failed.
        at: usize,
        /// What was inconsistent.
        detail: String,
    },
    /// The noise monitor saw the budget run out: decryption would no
    /// longer recover the plaintext within the configured error bound.
    BudgetExhausted {
        /// The operation index at which the budget was exceeded.
        at: usize,
        /// Log2 bits by which the tracked RMS noise exceeds the budget.
        deficit: f64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Params(e) => write!(f, "parameter error: {e}"),
            ExecError::Encode(e) => write!(f, "encode error: {e}"),
            ExecError::Eval { at, source } => write!(f, "evaluation error at op {at}: {source}"),
            ExecError::BadVectorWidth { vec_size, slots } => {
                write!(f, "vector width {vec_size} incompatible with {slots} slots")
            }
            ExecError::MissingInput { name } => write!(f, "no binding for input '{name}'"),
            ExecError::Guard { at, detail } => {
                write!(f, "runtime guard tripped at op {at}: {detail}")
            }
            ExecError::BudgetExhausted { at, deficit } => {
                write!(
                    f,
                    "noise budget exhausted at op {at} ({deficit:.1} bits over)"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ParamsError> for ExecError {
    fn from(e: ParamsError) -> Self {
        ExecError::Params(e)
    }
}

impl From<EncodeError> for ExecError {
    fn from(e: EncodeError) -> Self {
        ExecError::Encode(e)
    }
}

/// The result of one encrypted run.
#[derive(Debug)]
pub struct EncryptedRun {
    /// Decrypted, decoded outputs (first `vec_size` slots).
    pub outputs: HashMap<String, Vec<f64>>,
    /// Total homomorphic execution time, microseconds (setup, encryption,
    /// and decryption excluded — matching the paper's latency metric).
    pub total_us: f64,
    /// Per-operation time, microseconds (zero for non-runtime ops).
    pub op_us: Vec<f64>,
    /// Peak number of simultaneously live ciphertexts.
    pub peak_live: usize,
    /// Peak ciphertext working set in bytes (liveness-planned; the paper's
    /// SEAL dialect optimizes memory the same way).
    pub peak_bytes: usize,
    /// Ring degree used.
    pub degree: usize,
    /// Chain length used.
    pub chain_len: usize,
}

enum Val {
    Free(Vec<f64>),
    Plain(Plaintext),
    Cipher(Ciphertext),
}

/// Builds the [`CkksParams`] a compiled program calls for.
///
/// # Errors
/// Propagates parameter-construction failures.
pub fn build_params(
    prog: &CompiledProgram,
    opts: &BackendOptions,
) -> Result<CkksParams, ExecError> {
    let degree = opts.degree_override.unwrap_or(prog.params.degree);
    Ok(CkksParams::new(
        degree,
        prog.params.q0_bits.clamp(24, 60),
        prog.params.sf_bits,
        prog.params.chain_len - 1,
        false,
    )?)
}

/// Collects the evaluation keys a program needs: relinearization prefixes
/// and `(rotation step, prefix)` pairs.
pub fn key_requirements(
    prog: &CompiledProgram,
    slots: usize,
    chain_len: usize,
) -> (Vec<usize>, Vec<(usize, usize)>) {
    let mut relin = Vec::new();
    let mut rot = Vec::new();
    for (i, op) in prog.func.ops().iter().enumerate() {
        let level = |v: &ValueId| prog.types[v.index()].level().unwrap_or(0);
        match op {
            Op::Mul(a, b) => {
                let both_cipher =
                    prog.types[a.index()].is_cipher() && prog.types[b.index()].is_cipher();
                if both_cipher {
                    relin.push(chain_len - level(a));
                }
            }
            Op::Rotate { value, step } => {
                let s = step % slots;
                if s != 0 {
                    rot.push((s, chain_len - level(value)));
                }
            }
            _ => {}
        }
        let _ = i;
    }
    relin.sort_unstable();
    relin.dedup();
    rot.sort_unstable();
    rot.dedup();
    (relin, rot)
}

fn replicate(data: &[f64], vec_size: usize, slots: usize) -> Vec<f64> {
    let mut window = data.to_vec();
    window.resize(vec_size, 0.0);
    let mut out = Vec::with_capacity(slots);
    while out.len() < slots {
        out.extend_from_slice(&window);
    }
    out.truncate(slots);
    out
}

/// Executes a compiled program under encryption.
///
/// # Errors
/// Returns [`ExecError`] on parameter, key, input, or evaluator failures.
pub fn execute_encrypted(
    prog: &CompiledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    opts: &BackendOptions,
) -> Result<EncryptedRun, ExecError> {
    let params = build_params(prog, opts)?;
    let slots = params.slots();
    let vec_size = prog.func.vec_size;
    if vec_size > slots || !vec_size.is_power_of_two() {
        return Err(ExecError::BadVectorWidth { vec_size, slots });
    }
    let chain_len = params.basis().chain_len();
    let encoder = CkksEncoder::new(&params);
    let mut kg = KeyGenerator::new(&params, opts.seed);
    let pk = kg.public_key();
    let (mut relin, rot) = key_requirements(prog, slots, chain_len);
    if matches!(opts.fault, Some(FaultPlan::SkipRelin)) {
        relin.clear();
    }
    let keys = EvalKeys::generate(&mut kg, &relin, &rot);
    let mut encryptor = Encryptor::new(&params, pk, opts.seed.wrapping_add(1));
    let decryptor = Decryptor::new(&params, kg.secret_key().clone());
    let eval = Evaluator::new(&params, keys);

    let sf = prog.cfg.rescale_bits;
    let last = last_uses(&prog.func);
    let mut monitor = opts
        .guard
        .max_rms
        .map(|_| NoiseMonitor::new(params.degree()));
    let mut vals: HashMap<usize, Val> = HashMap::new();
    let mut op_us = vec![0.0f64; prog.func.len()];
    let mut total_us = 0.0;
    let mut live_cipher = 0usize;
    let mut peak_live = 0usize;
    let mut peak_bytes = 0usize;

    let basis = params.basis();
    let encode_replicated =
        |data: &[f64], scale: f64, level: usize| -> Result<Plaintext, ExecError> {
            let rep = replicate(data, vec_size, slots);
            let mut pt = encoder.encode(&rep, scale, level)?;
            // Plaintexts are prepared ahead of execution in NTT form, as SEAL
            // does, so ct⊙pt operations cost a pointwise pass only.
            pt.poly.to_ntt(basis);
            Ok(pt)
        };

    for (i, op) in prog.func.ops().iter().enumerate() {
        let ty = prog.types[i];
        let eval_err = |source: EvalError| ExecError::Eval { at: i, source };
        let value: Val = match op {
            Op::Input { name } => {
                let data = inputs
                    .get(name)
                    .ok_or_else(|| ExecError::MissingInput { name: name.clone() })?;
                let pt = encode_replicated(data, ty.scale().expect("cipher input"), 0)?;
                Val::Cipher(encryptor.encrypt(&pt))
            }
            Op::Const { data } => Val::Free((0..vec_size).map(|k| data.at(k)).collect()),
            Op::Encode {
                value,
                scale_bits,
                level,
            } => {
                let Val::Free(data) = &vals[&value.index()] else {
                    unreachable!("encode takes a free operand");
                };
                Val::Plain(encode_replicated(data, *scale_bits, *level)?)
            }
            Op::ModSwitch(v) | Op::Upscale { value: v, .. } if prog.types[v.index()].is_plain() => {
                // Plaintext scale management is symbolic: re-encode the
                // underlying data at the new (scale, level).
                let data = plain_source_data(prog, *v, &vals);
                Val::Plain(encode_replicated(
                    &data,
                    ty.scale().expect("plain"),
                    ty.level().expect("plain"),
                )?)
            }
            Op::Add(a, b) | Op::Sub(a, b) => {
                let t0 = Instant::now();
                let out = match (&vals[&a.index()], &vals[&b.index()]) {
                    (Val::Cipher(ca), Val::Cipher(cb)) => {
                        if matches!(op, Op::Add(..)) {
                            eval.add(ca, cb).map_err(eval_err)?
                        } else {
                            eval.sub(ca, cb).map_err(eval_err)?
                        }
                    }
                    (Val::Cipher(ca), Val::Plain(pb)) => {
                        if matches!(op, Op::Add(..)) {
                            eval.add_plain(ca, pb).map_err(eval_err)?
                        } else {
                            let mut neg = ca.clone();
                            neg = eval.negate(&neg);
                            let s = eval.add_plain(&neg, pb).map_err(eval_err)?;
                            eval.negate(&s)
                        }
                    }
                    (Val::Plain(pa), Val::Cipher(cb)) => {
                        if matches!(op, Op::Add(..)) {
                            eval.add_plain(cb, pa).map_err(eval_err)?
                        } else {
                            // pa − cb = −(cb − pa)
                            let s = eval.negate(cb);
                            eval.add_plain(&s, pa).map_err(eval_err)?
                        }
                    }
                    _ => unreachable!("binary op on free operands"),
                };
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                Val::Cipher(out)
            }
            Op::Mul(a, b) => {
                let t0 = Instant::now();
                let out = match (&vals[&a.index()], &vals[&b.index()]) {
                    (Val::Cipher(ca), Val::Cipher(cb)) => eval.mul(ca, cb).map_err(eval_err)?,
                    (Val::Cipher(ca), Val::Plain(pb)) => {
                        eval.mul_plain(ca, pb).map_err(eval_err)?
                    }
                    (Val::Plain(pa), Val::Cipher(cb)) => {
                        eval.mul_plain(cb, pa).map_err(eval_err)?
                    }
                    _ => unreachable!("binary op on free operands"),
                };
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                Val::Cipher(out)
            }
            Op::Negate(v) => {
                let Val::Cipher(c) = &vals[&v.index()] else {
                    unreachable!("negate on cipher")
                };
                let t0 = Instant::now();
                let out = eval.negate(c);
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                Val::Cipher(out)
            }
            Op::Rotate { value, step } => {
                let Val::Cipher(c) = &vals[&value.index()] else {
                    unreachable!("rotate on cipher")
                };
                let t0 = Instant::now();
                let out = eval.rotate(c, step % slots).map_err(eval_err)?;
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                Val::Cipher(out)
            }
            Op::Rescale(v) => {
                let Val::Cipher(c) = &vals[&v.index()] else {
                    unreachable!("rescale on cipher")
                };
                if matches!(opts.fault, Some(FaultPlan::DropRescale { at }) if at == i) {
                    // Injected fault: the rescale never happens; the value
                    // passes through with level and scale unchanged.
                    Val::Cipher(c.clone())
                } else {
                    let t0 = Instant::now();
                    let mut out = eval.rescale(c).map_err(eval_err)?;
                    op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                    total_us += op_us[i];
                    // Nominal scale declaration (see module docs).
                    out.scale_bits = c.scale_bits - sf;
                    Val::Cipher(out)
                }
            }
            Op::ModSwitch(v) => {
                let Val::Cipher(c) = &vals[&v.index()] else {
                    unreachable!("cipher modswitch")
                };
                let t0 = Instant::now();
                let out = eval.mod_switch(c).map_err(eval_err)?;
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                Val::Cipher(out)
            }
            Op::Upscale { value, target_bits } => {
                let Val::Cipher(c) = &vals[&value.index()] else {
                    unreachable!("cipher upscale")
                };
                let delta = target_bits - c.scale_bits;
                let ones = encode_replicated(&vec![1.0; vec_size], delta, c.level)?;
                let t0 = Instant::now();
                let mut out = eval.mul_plain(c, &ones).map_err(eval_err)?;
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                out.scale_bits = *target_bits;
                Val::Cipher(out)
            }
            Op::Downscale(v) => {
                let Val::Cipher(c) = &vals[&v.index()] else {
                    unreachable!("cipher downscale")
                };
                // Multiply by 1 at scale S_f + S_w − j, then rescale: the
                // scale lands exactly on the waterline (nominally).
                let target = prog.cfg.waterline;
                let delta = sf + target - c.scale_bits;
                let ones = encode_replicated(&vec![1.0; vec_size], delta, c.level)?;
                let t0 = Instant::now();
                let up = eval.mul_plain(c, &ones).map_err(eval_err)?;
                let mut out = eval.rescale(&up).map_err(eval_err)?;
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                out.scale_bits = target;
                Val::Cipher(out)
            }
        };
        let mut value = value;
        let mut injected_var = 0.0;
        if let (Some(fault), Val::Cipher(c)) = (&opts.fault, &mut value) {
            match fault {
                FaultPlan::CorruptLimb { at, limb } if *at == i => {
                    // Stuck-limb model: write the prime itself — one past
                    // the valid residue range [0, p).
                    let row = *limb % c.c0.prefix();
                    let p = basis.prime(row);
                    c.c0.residue_mut(row)[0] = p;
                }
                FaultPlan::PerturbScale { at, delta_bits } if *at == i => {
                    c.scale_bits += delta_bits;
                }
                FaultPlan::ExhaustNoise { at } if *at == i => {
                    // Add the constant polynomial A = 2^(s+1) to c0: every
                    // decoded slot shifts by A / 2^s = 2.0. Real corruption
                    // — decryption without the guard returns garbage.
                    let amp = (2.0f64).powf((c.scale_bits + 1.0).min(62.0)) as u64;
                    let ntt = c.c0.is_ntt();
                    for row in 0..c.c0.prefix() {
                        let p = basis.prime(row);
                        let r = c.c0.residue_mut(row);
                        if ntt {
                            for x in r.iter_mut() {
                                *x = (*x + amp % p) % p;
                            }
                        } else {
                            r[0] = (r[0] + amp % p) % p;
                        }
                    }
                    injected_var = 4.0;
                }
                _ => {}
            }
        }
        if let (Val::Cipher(c), true) = (&value, opts.guard.metadata_checks) {
            let want_scale = ty.scale().unwrap_or(c.scale_bits);
            let want_level = ty.level().unwrap_or(c.level);
            if (c.scale_bits - want_scale).abs() > 1e-3 {
                return Err(ExecError::Guard {
                    at: i,
                    detail: format!(
                        "scale 2^{:.3} disagrees with compiled 2^{want_scale:.3}",
                        c.scale_bits
                    ),
                });
            }
            if c.level != want_level || c.prefix() != chain_len - want_level {
                return Err(ExecError::Guard {
                    at: i,
                    detail: format!(
                        "level {} / prefix {} disagree with compiled level {want_level} (chain {chain_len})",
                        c.level,
                        c.prefix()
                    ),
                });
            }
        }
        if let (Val::Cipher(c), true) = (&value, opts.guard.validate_repr) {
            for poly in [&c.c0, &c.c1] {
                for row in 0..poly.prefix() {
                    let p = basis.prime(row);
                    if let Some(bad) = poly.residue(row).iter().find(|&&x| x >= p) {
                        return Err(ExecError::Guard {
                            at: i,
                            detail: format!("residue {bad} out of range for prime {p} (row {row})"),
                        });
                    }
                }
            }
        }
        if let (Some(m), Some(max_rms)) = (monitor.as_mut(), opts.guard.max_rms) {
            m.record(prog, i);
            if injected_var > 0.0 {
                m.inject(i, injected_var);
            }
            let rms = m.rms(i);
            if rms > max_rms {
                return Err(ExecError::BudgetExhausted {
                    at: i,
                    deficit: (rms / max_rms).log2(),
                });
            }
        }
        if matches!(value, Val::Cipher(_)) {
            live_cipher += 1;
            peak_live = peak_live.max(live_cipher);
            peak_bytes = peak_bytes.max(live_bytes(&vals, &value, params.degree()));
        }
        vals.insert(i, value);
        // Liveness-driven release: drop operands whose last use was here.
        for v in op.operands() {
            if last[v.index()] == i {
                if let Some(Val::Cipher(_)) = vals.get(&v.index()) {
                    live_cipher -= 1;
                }
                vals.remove(&v.index());
            }
        }
    }

    let mut outputs = HashMap::new();
    for (name, v) in prog.func.outputs() {
        let out = match &vals[&v.index()] {
            Val::Cipher(c) => {
                let mut decoded = encoder.decode(&decryptor.decrypt(c));
                decoded.truncate(vec_size);
                decoded
            }
            Val::Plain(p) => {
                let mut decoded = encoder.decode(p);
                decoded.truncate(vec_size);
                decoded
            }
            Val::Free(d) => d.clone(),
        };
        outputs.insert(name.clone(), out);
    }

    Ok(EncryptedRun {
        outputs,
        total_us,
        op_us,
        peak_live,
        peak_bytes,
        degree: params.degree(),
        chain_len,
    })
}

/// Bytes held by the currently live ciphertexts plus the value being
/// defined (two polynomials of `prefix` residue rows each).
fn live_bytes(vals: &HashMap<usize, Val>, pending: &Val, degree: usize) -> usize {
    let ct_bytes = |c: &Ciphertext| 2 * c.prefix() * degree * std::mem::size_of::<u64>();
    let mut total = match pending {
        Val::Cipher(c) => ct_bytes(c),
        _ => 0,
    };
    for v in vals.values() {
        if let Val::Cipher(c) = v {
            total += ct_bytes(c);
        }
    }
    total
}

/// Recovers the broadcastable data behind a plain value (a chain of
/// encode/modswitch/upscale over a constant).
fn plain_source_data(prog: &CompiledProgram, v: ValueId, _vals: &HashMap<usize, Val>) -> Vec<f64> {
    let mut cur = v;
    loop {
        match prog.func.op(cur) {
            Op::Encode { value, .. } => cur = *value,
            Op::ModSwitch(x) | Op::Upscale { value: x, .. } => cur = *x,
            Op::Const { data } => {
                return (0..prog.func.vec_size).map(|k| data.at(k)).collect();
            }
            other => unreachable!("plain chain hit {}", other.mnemonic()),
        }
    }
}
