//! Encrypted execution of compiled programs on the RNS-CKKS backend.
//!
//! The executor lowers a [`CompiledProgram`] onto [`hecate_ckks`]: it
//! builds the selected parameter set, generates exactly the evaluation
//! keys the program needs, encrypts the inputs, interprets the IR with
//! per-operation wall-clock timing, and decrypts the outputs.
//!
//! The per-operation kernels live in [`ExecEngine`], a reusable,
//! share-by-reference engine: constructing one performs the expensive
//! setup (parameters, key generation, evaluation keys), after which any
//! number of runs — sequential via [`execute_encrypted`], or scheduled
//! concurrently by the `hecate-runtime` serving layer — drive the same
//! engine through [`ExecEngine::exec_op`]. Every engine method takes
//! `&self`; the only stateful phase, input encryption, creates a fresh
//! seeded [`Encryptor`] per run so results are reproducible regardless of
//! how many runs share the engine.
//!
//! Two conventions matter:
//!
//! - **Nominal scales.** Compiler scales are nominal log2 bits. After each
//!   `rescale`, the actual scale differs from nominal by
//!   `S_f − log2(q_dropped)` (a ~2⁻²⁰ relative offset); the executor
//!   re-declares the nominal scale, exactly as EVA does on SEAL, and the
//!   offset is absorbed into the measured error.
//! - **Replication.** A program with logical vector width `w` runs on a
//!   ring with `N/2 ≥ w` slots by replicating every input and constant
//!   `N/2 / w` times. Cyclic rotation of a periodic vector rotates every
//!   window, so IR rotation semantics are preserved for any power-of-two
//!   `w` dividing the slot count.

use crate::fault::FaultPlan;
use crate::liveness::last_uses;
use crate::noise::{NoiseLedger, NoiseMonitor};
use hecate_ckks::encoder::EncodeError;
use hecate_ckks::eval::EvalError;
use hecate_ckks::params::ParamsError;
use hecate_ckks::{
    Ciphertext, CkksEncoder, CkksParams, Decryptor, Encryptor, EvalKeys, Evaluator, HoistedDecomp,
    KeyGenerator, Plaintext, PublicKey,
};
use hecate_compiler::{min_waterline_margin_bits, op_cost_infos, CompiledProgram, OpCostInfo};
use hecate_ir::{Op, ValueId};
use hecate_telemetry::trace;
use hecate_telemetry::{Counter, Gauge, Histogram};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A cooperative cancellation handle the executors poll between
/// operations.
///
/// Homomorphic kernels run for tens of microseconds to milliseconds, so
/// per-op polling bounds how long a cancelled (or deadline-expired) run
/// keeps burning cores without requiring kernels to be interruptible.
/// The token trips either explicitly ([`CancelToken::cancel`]) or
/// implicitly once its deadline passes; both surface as
/// [`ExecError::Cancelled`] from the run.
///
/// Cloning shares the underlying flag: any clone can cancel every
/// holder.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only trips when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that trips automatically once `deadline` passes (and can
    /// still be cancelled explicitly before then).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Trips the token; every executor sharing it stops at its next
    /// between-ops poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The deadline this token trips at, if it carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// Backend execution options.
#[derive(Debug, Clone)]
pub struct BackendOptions {
    /// Run at this ring degree instead of the compiled (security-selected)
    /// one — the reduced-scale mode used by default in the benchmark
    /// harness.
    pub degree_override: Option<usize>,
    /// Seed for key generation and encryption randomness.
    pub seed: u64,
    /// Runtime guards (metadata checks, representation validation, noise
    /// monitoring).
    pub guard: GuardOptions,
    /// Fault to inject, for testing the guards. `None` in normal runs.
    pub fault: Option<FaultPlan>,
    /// Scoped threads for the per-limb kernel inner loops of each
    /// homomorphic op (`1` = serial). Results are bit-identical at every
    /// job count.
    pub kernel_jobs: usize,
    /// Share one key-switch digit decomposition across all rotations of
    /// the same ciphertext (Halevi–Shoup hoisting). Bit-identical to the
    /// unhoisted path; off only for baseline measurements.
    pub hoist_rotations: bool,
    /// Slot-batching occupancy: how many tenants share each ciphertext.
    /// `1` (the default) is solo execution, bit-identical to before the
    /// batching subsystem existed. Values ≥ 2 must be powers of two and
    /// carve the slots into per-tenant blocks sized by the plan's slot
    /// footprint; rotations then run in packed mode (see
    /// [`physical_step`]) and inputs go through
    /// [`ExecEngine::encrypt_inputs_packed`].
    pub batch_occupancy: usize,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions {
            degree_override: None,
            seed: 0xC0FFEE,
            guard: GuardOptions::default(),
            fault: None,
            kernel_jobs: 1,
            hoist_rotations: true,
            batch_occupancy: 1,
        }
    }
}

/// Which runtime guards the executor runs after every operation.
#[derive(Debug, Clone)]
pub struct GuardOptions {
    /// Check each ciphertext's declared scale, level, and RNS prefix
    /// against the compiled plan's types (cheap; on by default).
    pub metadata_checks: bool,
    /// Scan every residue row of each result for values outside its
    /// prime's range (an `O(N·prefix)` pass per op; off by default).
    pub validate_repr: bool,
    /// Track the noise budget with a [`NoiseMonitor`] and abort with
    /// [`ExecError::BudgetExhausted`] once the modeled RMS noise of any
    /// value exceeds this bound. `None` disables monitoring.
    pub max_rms: Option<f64>,
}

impl Default for GuardOptions {
    fn default() -> Self {
        GuardOptions {
            metadata_checks: true,
            validate_repr: false,
            max_rms: None,
        }
    }
}

/// Guards with everything enabled (as the fault-injection suite runs).
impl GuardOptions {
    /// All guards on, with the given noise budget (RMS bound).
    pub fn strict(max_rms: f64) -> Self {
        GuardOptions {
            metadata_checks: true,
            validate_repr: true,
            max_rms: Some(max_rms),
        }
    }
}

/// Errors from encrypted execution.
#[derive(Debug)]
pub enum ExecError {
    /// Parameter construction failed.
    Params(ParamsError),
    /// Encoding failed.
    Encode(EncodeError),
    /// A homomorphic operation failed (indicates a compiler bug).
    Eval {
        /// The operation index.
        at: usize,
        /// The underlying evaluator error.
        source: EvalError,
    },
    /// The program's vector width does not fit or divide the slot count.
    BadVectorWidth {
        /// Logical width.
        vec_size: usize,
        /// Available slots.
        slots: usize,
    },
    /// An input binding is missing.
    MissingInput {
        /// The unbound name.
        name: String,
    },
    /// An input binding holds more elements than the program's declared
    /// vector width. Silently truncating (the old behavior) would drop
    /// user data; shorter inputs are still zero-padded.
    InputTooLong {
        /// The offending binding.
        name: String,
        /// Elements supplied.
        len: usize,
        /// The program's declared vector width.
        vec_size: usize,
    },
    /// A runtime guard found ciphertext state inconsistent with the
    /// compiled plan (wrong scale/level/prefix or an invalid residue).
    Guard {
        /// The operation index at which the check failed.
        at: usize,
        /// What was inconsistent.
        detail: String,
    },
    /// The noise monitor saw the budget run out: decryption would no
    /// longer recover the plaintext within the configured error bound.
    BudgetExhausted {
        /// The operation index at which the budget was exceeded.
        at: usize,
        /// Log2 bits by which the tracked RMS noise exceeds the budget.
        deficit: f64,
    },
    /// The run's [`CancelToken`] tripped (explicit cancellation or an
    /// expired deadline); remaining work was abandoned between ops.
    Cancelled {
        /// The operation index at which the cancellation was observed.
        at: usize,
    },
    /// The requested slot-batching occupancy cannot be realized: it is
    /// not a power of two, or the plan's slot footprint does not fit the
    /// per-tenant block at this ring degree.
    BatchUnsupported {
        /// The requested occupancy.
        occupancy: usize,
        /// Slots available per tenant block at this occupancy.
        block: usize,
        /// Slots one tenant needs (`back + width + fwd`).
        needed: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Params(e) => write!(f, "parameter error: {e}"),
            ExecError::Encode(e) => write!(f, "encode error: {e}"),
            ExecError::Eval { at, source } => write!(f, "evaluation error at op {at}: {source}"),
            ExecError::BadVectorWidth { vec_size, slots } => {
                write!(f, "vector width {vec_size} incompatible with {slots} slots")
            }
            ExecError::MissingInput { name } => write!(f, "no binding for input '{name}'"),
            ExecError::InputTooLong {
                name,
                len,
                vec_size,
            } => {
                write!(
                    f,
                    "input '{name}' has {len} elements but the program's vector width is {vec_size}"
                )
            }
            ExecError::Guard { at, detail } => {
                write!(f, "runtime guard tripped at op {at}: {detail}")
            }
            ExecError::BudgetExhausted { at, deficit } => {
                write!(
                    f,
                    "noise budget exhausted at op {at} ({deficit:.1} bits over)"
                )
            }
            ExecError::Cancelled { at } => {
                write!(f, "execution cancelled at op {at} (deadline or shed)")
            }
            ExecError::BatchUnsupported {
                occupancy,
                block,
                needed,
            } => {
                write!(
                    f,
                    "batch occupancy {occupancy} unsupported: footprint needs {needed} slots \
                     per tenant but the block holds {block}"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ParamsError> for ExecError {
    fn from(e: ParamsError) -> Self {
        ExecError::Params(e)
    }
}

impl From<EncodeError> for ExecError {
    fn from(e: EncodeError) -> Self {
        ExecError::Encode(e)
    }
}

/// The result of one encrypted run.
#[derive(Debug)]
pub struct EncryptedRun {
    /// Decrypted, decoded outputs (first `vec_size` slots).
    pub outputs: HashMap<String, Vec<f64>>,
    /// Total homomorphic execution time, microseconds (setup, encryption,
    /// and decryption excluded — matching the paper's latency metric).
    pub total_us: f64,
    /// Per-operation time, microseconds (zero for non-runtime ops).
    pub op_us: Vec<f64>,
    /// Peak number of simultaneously live ciphertexts.
    pub peak_live: usize,
    /// Peak ciphertext working set in bytes (liveness-planned; the paper's
    /// SEAL dialect optimizes memory the same way).
    pub peak_bytes: usize,
    /// Ring degree used.
    pub degree: usize,
    /// Chain length used.
    pub chain_len: usize,
    /// Tightest scale-vs-waterline margin (bits) across every executed
    /// cipher operation, from the run's [`NoiseLedger`]. Infinite when the
    /// program produced no ciphertexts.
    pub min_margin_bits: f64,
}

enum Val {
    Free(Vec<f64>),
    Plain(Plaintext),
    Cipher(Ciphertext),
}

/// The runtime value of one IR operation: a free vector, an encoded
/// plaintext, or a ciphertext. Opaque to callers; produced and consumed by
/// [`ExecEngine`] kernels.
pub struct OpValue(Val);

impl OpValue {
    /// Whether this value is a ciphertext (the only kind that occupies
    /// ciphertext working-set memory).
    pub fn is_cipher(&self) -> bool {
        matches!(self.0, Val::Cipher(_))
    }

    /// The underlying ciphertext, if this value is one — the handle a
    /// [`hecate_ckks::DecryptProbe`] reads during an audited run.
    pub fn as_cipher(&self) -> Option<&Ciphertext> {
        match &self.0 {
            Val::Cipher(c) => Some(c),
            _ => None,
        }
    }

    /// Bytes this value contributes to the ciphertext working set.
    pub fn cipher_bytes(&self, degree: usize) -> usize {
        match &self.0 {
            Val::Cipher(c) => 2 * c.prefix() * degree * std::mem::size_of::<u64>(),
            _ => 0,
        }
    }
}

/// Builds the [`CkksParams`] a compiled program calls for.
///
/// # Errors
/// Propagates parameter-construction failures.
pub fn build_params(
    prog: &CompiledProgram,
    opts: &BackendOptions,
) -> Result<CkksParams, ExecError> {
    let degree = opts.degree_override.unwrap_or(prog.params.degree);
    Ok(CkksParams::new(
        degree,
        prog.params.q0_bits.clamp(24, 60),
        prog.params.sf_bits,
        prog.params.chain_len - 1,
        false,
    )?)
}

/// The physical slot rotation realizing a logical rotate-left by `step`
/// on a `vec_size`-wide program.
///
/// Solo (`occupancy == 1`): replication makes every `step % slots`
/// rotation correct. Packed (`occupancy >= 2`): the executor must keep
/// each tenant's data inside its block's guard bands, so it takes the
/// *short* direction chosen by [`hecate_ir::packed_shift`] — a small
/// rotate-left (`fwd` slots) or its rotate-right complement
/// (`slots - back`). Key generation, fan-out analysis, and the rotate
/// kernel all go through this one mapping.
pub fn physical_step(step: usize, vec_size: usize, slots: usize, occupancy: usize) -> usize {
    if occupancy <= 1 {
        step % slots
    } else {
        let (fwd, back) = hecate_ir::packed_shift(step, vec_size);
        if fwd > 0 {
            fwd
        } else if back > 0 {
            slots - back
        } else {
            0
        }
    }
}

/// Collects the evaluation keys a program needs: relinearization prefixes
/// and `(rotation step, prefix)` pairs. Solo layout; see
/// [`key_requirements_for`] for packed engines.
pub fn key_requirements(
    prog: &CompiledProgram,
    slots: usize,
    chain_len: usize,
) -> (Vec<usize>, Vec<(usize, usize)>) {
    key_requirements_for(prog, slots, chain_len, 1)
}

/// [`key_requirements`] for an engine at the given batching occupancy:
/// rotation steps are mapped through [`physical_step`] so a packed engine
/// generates Galois keys for the steps it will actually execute.
pub fn key_requirements_for(
    prog: &CompiledProgram,
    slots: usize,
    chain_len: usize,
    occupancy: usize,
) -> (Vec<usize>, Vec<(usize, usize)>) {
    let vec_size = prog.func.vec_size;
    let mut relin = Vec::new();
    let mut rot = Vec::new();
    for op in prog.func.ops() {
        let level = |v: &ValueId| prog.types[v.index()].level().unwrap_or(0);
        match op {
            Op::Mul(a, b) => {
                let both_cipher =
                    prog.types[a.index()].is_cipher() && prog.types[b.index()].is_cipher();
                if both_cipher {
                    relin.push(chain_len - level(a));
                }
            }
            Op::Rotate { value, step } => {
                let s = physical_step(*step, vec_size, slots, occupancy);
                if s != 0 {
                    rot.push((s, chain_len - level(value)));
                }
            }
            _ => {}
        }
    }
    relin.sort_unstable();
    relin.dedup();
    rot.sort_unstable();
    rot.dedup();
    (relin, rot)
}

/// Replicates a logical vector across the slot count. Shorter data is
/// zero-padded to `vec_size`; longer data is rejected by the caller via
/// [`ExecError::InputTooLong`] — cycling it into the window would
/// silently drop elements.
fn replicate(data: &[f64], vec_size: usize, slots: usize) -> Vec<f64> {
    debug_assert!(data.len() <= vec_size, "caller validates input length");
    let mut window = data.to_vec();
    window.resize(vec_size, 0.0);
    let mut out = Vec::with_capacity(slots);
    while out.len() < slots {
        out.extend_from_slice(&window);
    }
    out.truncate(slots);
    out
}

/// Per-run cache of hoisted rotation decompositions, keyed by the
/// producer value's operation index.
///
/// One [`HoistState`] must live exactly as long as one run: decomposed
/// `c1` values depend on that run's ciphertexts, so sharing across runs
/// (or engines) would be incorrect. The sequential and parallel drivers
/// each create one and thread it through [`ExecEngine::exec_op_with`].
/// Concurrent workers may race to hoist the same value; both compute the
/// same bits (the kernels are deterministic), the first insert wins, and
/// the duplicate is dropped — correctness never depends on the race.
#[derive(Debug, Default)]
pub struct HoistState {
    decomps: Mutex<HashMap<usize, Arc<HoistedDecomp>>>,
}

impl HoistState {
    /// Returns the hoisted decomposition for the value at `key`,
    /// computing (and caching) it on first use.
    fn get_or_hoist(&self, key: usize, c: &Ciphertext, eval: &Evaluator) -> Arc<HoistedDecomp> {
        if let Some(hd) = self
            .decomps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            return hd.clone();
        }
        // Hoist outside the lock: a concurrent duplicate costs one
        // redundant decomposition, never a stall of every other worker.
        let mut span = trace::span_with("hoist-decompose", || {
            vec![("value", key.into()), ("active_primes", c.prefix().into())]
        });
        let t0 = Instant::now();
        let hd = Arc::new(eval.hoist(c));
        span.attr("us", (t0.elapsed().as_secs_f64() * 1e6).into());
        self.decomps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key)
            .or_insert(hd)
            .clone()
    }
}

/// A reusable encrypted-execution engine for one compiled program.
///
/// Construction performs all per-program setup: parameter building, key
/// generation, and evaluation-key synthesis for exactly the
/// relinearization and rotation prefixes the program uses. After that,
/// every method takes `&self` — a single engine can serve any number of
/// sequential or concurrent runs, which is what the `hecate-runtime`
/// session manager relies on (one engine per session × plan, shared
/// across worker threads).
///
/// Randomness discipline: key generation consumes `seed`; each call to
/// [`ExecEngine::encrypt_inputs`] creates a fresh [`Encryptor`] seeded
/// with `seed + 1` and encrypts inputs in operation order. Homomorphic
/// kernels are deterministic, so two runs over the same inputs produce
/// bit-identical ciphertexts and outputs no matter how operations are
/// scheduled between those two phases.
pub struct ExecEngine {
    prog: Arc<CompiledProgram>,
    params: CkksParams,
    encoder: CkksEncoder,
    eval: Evaluator,
    decryptor: Decryptor,
    pk: PublicKey,
    guard: GuardOptions,
    fault: Option<FaultPlan>,
    chain_len: usize,
    slots: usize,
    vec_size: usize,
    sf: f64,
    seed: u64,
    /// Slot-batching occupancy (1 = solo). Fixed at engine build: it
    /// determines key generation, the physical rotation mapping, and the
    /// packed input/output layout.
    occupancy: usize,
    /// Slots per tenant block (`slots / occupancy`).
    block: usize,
    /// Per-op contamination reach `(back, fwd)` under packed execution;
    /// empty for solo engines.
    reaches: Vec<(usize, usize)>,
    /// Whether rotation hoisting is enabled for this engine.
    hoist_rotations: bool,
    /// Per value index: number of distinct nonzero canonical rotation
    /// steps applied to it. Fan-out ≥ 2 makes hoisting profitable (one
    /// shared decomposition amortized over ≥ 2 rotations).
    rotate_fanout: Vec<u32>,
    // Telemetry: per-op cost attribution (computed once at engine build so
    // tracing adds no per-op analysis), plus cached global-metric handles
    // so the hot path never takes the registry lock.
    cost_infos: Vec<OpCostInfo>,
    ops_counter: Counter,
    op_us_hist: Histogram,
    // Precision observability: the plan's static waterline margin
    // (min over cipher ops of scale − S_w), plus cached handles into the
    // global `hecate_precision_*` metric family.
    min_plan_margin_bits: f64,
    precision_ops: Counter,
    precision_margin_gauge: Gauge,
}

/// Per value index: the number of distinct nonzero canonical rotation
/// steps applied to it in `prog`. Values rotated by two or more distinct
/// steps are hoisting candidates.
pub fn rotation_fanout(prog: &CompiledProgram, slots: usize) -> Vec<u32> {
    rotation_fanout_for(prog, slots, 1)
}

/// [`rotation_fanout`] under the given batching occupancy (fan-out is
/// counted over *physical* steps, which differ in packed mode).
pub fn rotation_fanout_for(prog: &CompiledProgram, slots: usize, occupancy: usize) -> Vec<u32> {
    let vec_size = prog.func.vec_size;
    let mut fanout = vec![0u32; prog.func.len()];
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for op in prog.func.ops() {
        if let Op::Rotate { value, step } = op {
            let s = physical_step(*step, vec_size, slots, occupancy);
            if s != 0 && seen.insert((value.index(), s)) {
                fanout[value.index()] += 1;
            }
        }
    }
    fanout
}

impl ExecEngine {
    /// Builds parameters and all required keys for `prog`.
    ///
    /// # Errors
    /// Returns [`ExecError`] on parameter failures or an incompatible
    /// vector width.
    pub fn new(prog: Arc<CompiledProgram>, opts: &BackendOptions) -> Result<ExecEngine, ExecError> {
        let params = build_params(&prog, opts)?;
        let slots = params.slots();
        let vec_size = prog.func.vec_size;
        if vec_size > slots || !vec_size.is_power_of_two() {
            return Err(ExecError::BadVectorWidth { vec_size, slots });
        }
        let occupancy = opts.batch_occupancy.max(1);
        let block = slots / occupancy;
        let mut reaches = Vec::new();
        if occupancy > 1 {
            reaches = hecate_ir::slot_reaches(&prog.func);
            let needed = reaches
                .iter()
                .map(|&(b, f)| b + vec_size + f)
                .max()
                .unwrap_or(vec_size);
            let fits = occupancy.is_power_of_two()
                && occupancy * block == slots
                && block.is_multiple_of(vec_size)
                && needed <= block;
            if !fits {
                return Err(ExecError::BatchUnsupported {
                    occupancy,
                    block,
                    needed,
                });
            }
        }
        let chain_len = params.basis().chain_len();
        let encoder = CkksEncoder::new(&params);
        let mut kg = KeyGenerator::new(&params, opts.seed);
        let pk = kg.public_key();
        let (mut relin, rot) = key_requirements_for(&prog, slots, chain_len, occupancy);
        if matches!(opts.fault, Some(FaultPlan::SkipRelin)) {
            relin.clear();
        }
        let keys = EvalKeys::generate(&mut kg, &relin, &rot);
        let decryptor = Decryptor::new(&params, kg.secret_key().clone());
        let mut eval = Evaluator::new(&params, keys);
        eval.set_kernel_jobs(opts.kernel_jobs);
        let sf = prog.cfg.rescale_bits;
        let rotate_fanout = rotation_fanout_for(&prog, slots, occupancy);
        let cost_infos = op_cost_infos(&prog.func, &prog.types, chain_len);
        let registry = hecate_telemetry::metrics::global();
        let ops_counter = registry.counter("hecate_exec_ops_total");
        let op_us_hist = registry.histogram("hecate_exec_op_us", 24);
        let min_plan_margin_bits =
            min_waterline_margin_bits(&prog.func, &prog.types, prog.cfg.waterline);
        let precision_ops = registry.counter("hecate_precision_ops_total");
        let precision_margin_gauge = registry.gauge("hecate_precision_min_margin_millibits");
        Ok(ExecEngine {
            prog,
            params,
            encoder,
            eval,
            decryptor,
            pk,
            guard: opts.guard.clone(),
            fault: opts.fault.clone(),
            chain_len,
            slots,
            vec_size,
            sf,
            seed: opts.seed,
            occupancy,
            block,
            reaches,
            hoist_rotations: opts.hoist_rotations,
            rotate_fanout,
            cost_infos,
            ops_counter,
            op_us_hist,
            min_plan_margin_bits,
            precision_ops,
            precision_margin_gauge,
        })
    }

    /// The compiled program this engine executes.
    pub fn prog(&self) -> &Arc<CompiledProgram> {
        &self.prog
    }

    /// Ring degree in use (possibly overridden below the secure degree).
    pub fn degree(&self) -> usize {
        self.params.degree()
    }

    /// Modulus-chain length in use.
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }

    /// Slot-batching occupancy this engine was built for (1 = solo).
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Slots per tenant block (`slots / occupancy`; all slots when solo).
    pub fn block_slots(&self) -> usize {
        self.block
    }

    /// The physical rotation this engine performs for logical `step`.
    fn phys_step(&self, step: usize) -> usize {
        physical_step(step, self.vec_size, self.slots, self.occupancy)
    }

    /// The guard configuration this engine applies after every operation.
    pub fn guard(&self) -> &GuardOptions {
        &self.guard
    }

    /// The plan's static waterline margin in bits: the minimum over all
    /// cipher ops of `scale − S_w`. Because margins are type-derived, this
    /// equals the minimum any run's [`NoiseLedger`] will record; the
    /// serving layer exports it per session without paying for a ledger.
    pub fn min_plan_margin_bits(&self) -> f64 {
        self.min_plan_margin_bits
    }

    /// A read-only decrypt probe over this engine's decryptor and
    /// encoder, for audit-mode checkpoint comparisons. Probing never
    /// mutates ciphertexts, so audited runs stay bit-identical.
    pub fn probe(&self) -> hecate_ckks::DecryptProbe<'_> {
        hecate_ckks::DecryptProbe::new(&self.decryptor, &self.encoder)
    }

    /// Folds one finished run's ledger into the global
    /// `hecate_precision_*` metric family: bumps the recorded-op counter
    /// and publishes the run's tightest margin (millibits, so the integer
    /// gauge keeps three decimal places).
    pub fn publish_precision(&self, ledger: &NoiseLedger) {
        self.precision_ops.add(ledger.entries().len() as u64);
        let min = ledger.min_margin_bits();
        if min.is_finite() {
            self.precision_margin_gauge.set((min * 1000.0) as i64);
        }
    }

    /// A noise monitor when noise guarding is configured, else `None`.
    /// The monitor is per-run mutable state, so each run owns its own.
    /// Packed engines use the same worst-block model as
    /// [`NoiseLedger::with_occupancy`]: the per-slot message mean-square
    /// is bounded by the occupancy and injected noise terms carry the
    /// worst-block concentration multiplier, so guard verdicts and the
    /// ledger agree on every run. At occupancy 1 both factors are 1.0,
    /// leaving the solo model bit-identical.
    pub fn new_monitor(&self) -> Option<NoiseMonitor> {
        self.guard.max_rms.map(|_| {
            NoiseMonitor::new(self.degree())
                .with_message_bound(self.occupancy as f64)
                .with_noise_concentration(self.occupancy as f64)
        })
    }

    fn encode_replicated(
        &self,
        name: &str,
        data: &[f64],
        scale: f64,
        level: usize,
    ) -> Result<Plaintext, ExecError> {
        if data.len() > self.vec_size {
            return Err(ExecError::InputTooLong {
                name: name.to_string(),
                len: data.len(),
                vec_size: self.vec_size,
            });
        }
        let rep = replicate(data, self.vec_size, self.slots);
        let mut pt = self.encoder.encode(&rep, scale, level)?;
        // Plaintexts are prepared ahead of execution in NTT form, as SEAL
        // does, so ct⊙pt operations cost a pointwise pass only.
        pt.poly.to_ntt(self.params.basis());
        Ok(pt)
    }

    /// Encrypts the input bindings, producing a value table with exactly
    /// the `input` operation slots filled. Inputs are encrypted in
    /// operation order from a fresh seeded encryptor, so the ciphertexts
    /// are identical across runs and independent of downstream scheduling.
    ///
    /// # Errors
    /// Returns [`ExecError::MissingInput`] for unbound names and
    /// propagates encoding failures.
    pub fn encrypt_inputs(
        &self,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<Vec<Option<OpValue>>, ExecError> {
        let mut encryptor =
            Encryptor::new(&self.params, self.pk.clone(), self.seed.wrapping_add(1));
        let mut vals: Vec<Option<OpValue>> = Vec::with_capacity(self.prog.func.len());
        for (i, op) in self.prog.func.ops().iter().enumerate() {
            vals.push(match op {
                Op::Input { name } => {
                    let data = inputs
                        .get(name)
                        .ok_or_else(|| ExecError::MissingInput { name: name.clone() })?;
                    let scale = self.prog.types[i].scale().expect("cipher input");
                    let pt = self.encode_replicated(name, data, scale, 0)?;
                    Some(OpValue(Val::Cipher(encryptor.encrypt(&pt))))
                }
                _ => None,
            });
        }
        Ok(vals)
    }

    /// Packed-mode counterpart of [`ExecEngine::encrypt_inputs`]: packs
    /// each tenant's input bindings into its slot block (the layout of
    /// [`hecate_ckks::pack_blocks`], which restricted to one block equals
    /// solo replication — so replicated plaintext constants act correctly
    /// on every tenant at once) and encrypts each packed vector once.
    ///
    /// # Errors
    /// Returns [`ExecError::BatchUnsupported`] when the engine is solo or
    /// the tenant count disagrees with the occupancy, and per-tenant
    /// [`ExecError::MissingInput`] / [`ExecError::InputTooLong`].
    pub fn encrypt_inputs_packed(
        &self,
        tenants: &[&HashMap<String, Vec<f64>>],
    ) -> Result<Vec<Option<OpValue>>, ExecError> {
        if self.occupancy < 2 || tenants.len() != self.occupancy {
            return Err(ExecError::BatchUnsupported {
                occupancy: tenants.len(),
                block: self.block,
                needed: self.vec_size,
            });
        }
        let mut encryptor =
            Encryptor::new(&self.params, self.pk.clone(), self.seed.wrapping_add(1));
        let mut vals: Vec<Option<OpValue>> = Vec::with_capacity(self.prog.func.len());
        for (i, op) in self.prog.func.ops().iter().enumerate() {
            vals.push(match op {
                Op::Input { name } => {
                    let mut per_tenant = Vec::with_capacity(self.occupancy);
                    for inputs in tenants {
                        let data = inputs
                            .get(name)
                            .ok_or_else(|| ExecError::MissingInput { name: name.clone() })?;
                        if data.len() > self.vec_size {
                            return Err(ExecError::InputTooLong {
                                name: name.clone(),
                                len: data.len(),
                                vec_size: self.vec_size,
                            });
                        }
                        per_tenant.push(data.clone());
                    }
                    let packed = hecate_ckks::pack_blocks(
                        &per_tenant,
                        self.vec_size,
                        self.block,
                        self.slots,
                    );
                    let scale = self.prog.types[i].scale().expect("cipher input");
                    let mut pt = self.encoder.encode(&packed, scale, 0)?;
                    pt.poly.to_ntt(self.params.basis());
                    Some(OpValue(Val::Cipher(encryptor.encrypt(&pt))))
                }
                _ => None,
            });
        }
        Ok(vals)
    }

    /// Demultiplexes the value produced by operation `i` into one logical
    /// `vec_size`-vector per tenant, reading each tenant's clean window
    /// (past the op's backward contamination reach) and realigning in
    /// plaintext. Solo engines return a single entry equal to
    /// [`ExecEngine::decrypt_output`].
    pub fn demux_value(&self, value: &OpValue, i: usize) -> Vec<Vec<f64>> {
        if self.occupancy < 2 {
            return vec![self.decrypt_output(value)];
        }
        let decoded = match &value.0 {
            Val::Cipher(c) => self.encoder.decode(&self.decryptor.decrypt(c)),
            Val::Plain(p) => self.encoder.decode(p),
            Val::Free(d) => return vec![d.clone(); self.occupancy],
        };
        let back = self.reaches.get(i).map_or(0, |&(b, _)| b);
        (0..self.occupancy)
            .map(|b| hecate_ckks::unpack_block(&decoded, b * self.block, back, self.vec_size))
            .collect()
    }

    /// Like [`ExecEngine::demux_value`], but returns every *clean copy*
    /// of the tenant's window inside its block, concatenated. Packing
    /// tiles the logical vector across the block and a global rotation
    /// shifts all copies consistently, so each copy outside the op's
    /// contamination reach is an independent noise sample of the same
    /// logical value — the batched audit measures probe RMS over all of
    /// them instead of the single window, which keeps per-probe sampling
    /// variance comparable to a solo audit's despite the narrower blocks.
    pub fn demux_copies(&self, value: &OpValue, i: usize) -> Vec<Vec<f64>> {
        if self.occupancy < 2 {
            return vec![self.decrypt_output(value)];
        }
        let decoded = match &value.0 {
            Val::Cipher(c) => self.encoder.decode(&self.decryptor.decrypt(c)),
            Val::Plain(p) => self.encoder.decode(p),
            Val::Free(d) => return vec![d.clone(); self.occupancy],
        };
        let (back, fwd) = self.reaches.get(i).copied().unwrap_or((0, 0));
        // Feasibility (checked at engine build) guarantees at least one.
        let copies = (self.block - back - fwd) / self.vec_size;
        (0..self.occupancy)
            .map(|b| {
                let mut out = Vec::with_capacity(copies * self.vec_size);
                for c in 0..copies {
                    out.extend(hecate_ckks::unpack_block(
                        &decoded,
                        b * self.block + c * self.vec_size,
                        back,
                        self.vec_size,
                    ));
                }
                out
            })
            .collect()
    }

    /// Executes operation `i` given its operand values (in
    /// [`Op::operands`] order), then applies fault injection and guards.
    /// Returns the value, the homomorphic kernel time in microseconds
    /// (zero for setup-only operations), and any injected noise variance
    /// for the caller's noise monitor.
    ///
    /// `input` operations are handled by [`ExecEngine::encrypt_inputs`],
    /// not here.
    ///
    /// # Errors
    /// Returns [`ExecError`] on evaluator failures or tripped guards.
    pub fn exec_op(
        &self,
        i: usize,
        operands: &[&OpValue],
    ) -> Result<(OpValue, f64, f64), ExecError> {
        self.exec_op_with(i, operands, None)
    }

    /// Like [`ExecEngine::exec_op`], with an optional per-run [`HoistState`]
    /// enabling Halevi–Shoup rotation hoisting for fanned-out rotations.
    /// Passing `None` (or constructing the engine with
    /// [`BackendOptions::hoist_rotations`] off) takes the plain rotation
    /// path; both paths are bit-identical.
    ///
    /// # Errors
    /// Returns [`ExecError`] on evaluator failures or tripped guards.
    pub fn exec_op_with(
        &self,
        i: usize,
        operands: &[&OpValue],
        hoist: Option<&HoistState>,
    ) -> Result<(OpValue, f64, f64), ExecError> {
        let mut span = trace::span_with("exec-op", || {
            let info = &self.cost_infos[i];
            vec![
                ("i", i.into()),
                ("op", self.prog.func.ops()[i].mnemonic().into()),
                ("cost_op", info.label().into()),
                ("level", info.operand_level.into()),
                ("active_primes", info.active_primes.into()),
            ]
        });
        let (value, us) = self.compute(i, operands, hoist)?;
        span.attr("us", us.into());
        if !self.cost_infos[i].cost_ops.is_empty() {
            self.ops_counter.inc();
            self.op_us_hist.observe(us as u64);
        }
        let mut value = OpValue(value);
        let injected_var = self.inject_fault(i, &mut value);
        self.check_guards(i, &value)?;
        Ok((value, us, injected_var))
    }

    /// Applies fault injection and guards to a value produced outside
    /// [`ExecEngine::exec_op`] (i.e. an encrypted input). Returns the
    /// injected noise variance.
    ///
    /// # Errors
    /// Returns [`ExecError::Guard`] if a guard trips.
    pub fn admit_value(&self, i: usize, value: &mut OpValue) -> Result<f64, ExecError> {
        let injected_var = self.inject_fault(i, value);
        self.check_guards(i, value)?;
        Ok(injected_var)
    }

    /// Runs the noise monitor for operation `i` and enforces the budget.
    ///
    /// # Errors
    /// Returns [`ExecError::BudgetExhausted`] once the modeled RMS noise
    /// exceeds the configured bound.
    pub fn check_noise(
        &self,
        monitor: &mut NoiseMonitor,
        i: usize,
        injected_var: f64,
    ) -> Result<(), ExecError> {
        let Some(max_rms) = self.guard.max_rms else {
            return Ok(());
        };
        monitor.record(&self.prog, i);
        if injected_var > 0.0 {
            monitor.inject(i, injected_var);
        }
        let rms = monitor.rms(i);
        if rms > max_rms {
            return Err(ExecError::BudgetExhausted {
                at: i,
                deficit: (rms / max_rms).log2(),
            });
        }
        Ok(())
    }

    /// Decrypts (or decodes) an output value down to the first
    /// `vec_size` slots.
    pub fn decrypt_output(&self, value: &OpValue) -> Vec<f64> {
        match &value.0 {
            Val::Cipher(c) => {
                let mut decoded = self.encoder.decode(&self.decryptor.decrypt(c));
                decoded.truncate(self.vec_size);
                decoded
            }
            Val::Plain(p) => {
                let mut decoded = self.encoder.decode(p);
                decoded.truncate(self.vec_size);
                decoded
            }
            Val::Free(d) => d.clone(),
        }
    }

    fn compute(
        &self,
        i: usize,
        operands: &[&OpValue],
        hoist: Option<&HoistState>,
    ) -> Result<(Val, f64), ExecError> {
        let prog = &self.prog;
        let op = &prog.func.ops()[i];
        let ty = prog.types[i];
        let eval = &self.eval;
        let eval_err = |source: EvalError| ExecError::Eval { at: i, source };
        let mut us = 0.0f64;
        let value = match op {
            Op::Input { .. } => unreachable!("inputs are encrypted by encrypt_inputs"),
            Op::Const { data } => Val::Free((0..self.vec_size).map(|k| data.at(k)).collect()),
            Op::Encode {
                scale_bits, level, ..
            } => {
                let Val::Free(data) = &operands[0].0 else {
                    unreachable!("encode takes a free operand");
                };
                Val::Plain(self.encode_replicated("<const>", data, *scale_bits, *level)?)
            }
            Op::ModSwitch(v) | Op::Upscale { value: v, .. } if prog.types[v.index()].is_plain() => {
                // Plaintext scale management is symbolic: re-encode the
                // underlying data at the new (scale, level).
                let data = self.plain_source_data(*v);
                Val::Plain(self.encode_replicated(
                    "<const>",
                    &data,
                    ty.scale().expect("plain"),
                    ty.level().expect("plain"),
                )?)
            }
            Op::Add(..) | Op::Sub(..) => {
                let t0 = Instant::now();
                let out = match (&operands[0].0, &operands[1].0) {
                    (Val::Cipher(ca), Val::Cipher(cb)) => {
                        if matches!(op, Op::Add(..)) {
                            eval.add(ca, cb).map_err(eval_err)?
                        } else {
                            eval.sub(ca, cb).map_err(eval_err)?
                        }
                    }
                    (Val::Cipher(ca), Val::Plain(pb)) => {
                        if matches!(op, Op::Add(..)) {
                            eval.add_plain(ca, pb).map_err(eval_err)?
                        } else {
                            let mut neg = ca.clone();
                            neg = eval.negate(&neg);
                            let s = eval.add_plain(&neg, pb).map_err(eval_err)?;
                            eval.negate(&s)
                        }
                    }
                    (Val::Plain(pa), Val::Cipher(cb)) => {
                        if matches!(op, Op::Add(..)) {
                            eval.add_plain(cb, pa).map_err(eval_err)?
                        } else {
                            // pa − cb = −(cb − pa)
                            let s = eval.negate(cb);
                            eval.add_plain(&s, pa).map_err(eval_err)?
                        }
                    }
                    _ => unreachable!("binary op on free operands"),
                };
                us = t0.elapsed().as_secs_f64() * 1e6;
                Val::Cipher(out)
            }
            Op::Mul(..) => {
                let t0 = Instant::now();
                let out = match (&operands[0].0, &operands[1].0) {
                    (Val::Cipher(ca), Val::Cipher(cb)) => eval.mul(ca, cb).map_err(eval_err)?,
                    (Val::Cipher(ca), Val::Plain(pb)) => {
                        eval.mul_plain(ca, pb).map_err(eval_err)?
                    }
                    (Val::Plain(pa), Val::Cipher(cb)) => {
                        eval.mul_plain(cb, pa).map_err(eval_err)?
                    }
                    _ => unreachable!("binary op on free operands"),
                };
                us = t0.elapsed().as_secs_f64() * 1e6;
                Val::Cipher(out)
            }
            Op::Negate(..) => {
                let Val::Cipher(c) = &operands[0].0 else {
                    unreachable!("negate on cipher")
                };
                let t0 = Instant::now();
                let out = eval.negate(c);
                us = t0.elapsed().as_secs_f64() * 1e6;
                Val::Cipher(out)
            }
            Op::Rotate { value, step } => {
                let Val::Cipher(c) = &operands[0].0 else {
                    unreachable!("rotate on cipher")
                };
                let s = self.phys_step(*step);
                let hoistable = self.hoist_rotations
                    && s != 0
                    && self.rotate_fanout[value.index()] >= 2
                    && hoist.is_some();
                let t0 = Instant::now();
                let out = if hoistable {
                    let hs = hoist.expect("checked above");
                    let hd = hs.get_or_hoist(value.index(), c, eval);
                    eval.rotate_hoisted(c, &hd, s).map_err(eval_err)?
                } else {
                    eval.rotate(c, s).map_err(eval_err)?
                };
                us = t0.elapsed().as_secs_f64() * 1e6;
                Val::Cipher(out)
            }
            Op::Rescale(..) => {
                let Val::Cipher(c) = &operands[0].0 else {
                    unreachable!("rescale on cipher")
                };
                if matches!(self.fault, Some(FaultPlan::DropRescale { at }) if at == i) {
                    // Injected fault: the rescale never happens; the value
                    // passes through with level and scale unchanged.
                    Val::Cipher(c.clone())
                } else {
                    let t0 = Instant::now();
                    let mut out = eval.rescale(c).map_err(eval_err)?;
                    us = t0.elapsed().as_secs_f64() * 1e6;
                    // Nominal scale declaration (see module docs).
                    out.scale_bits = c.scale_bits - self.sf;
                    Val::Cipher(out)
                }
            }
            Op::ModSwitch(..) => {
                let Val::Cipher(c) = &operands[0].0 else {
                    unreachable!("cipher modswitch")
                };
                let t0 = Instant::now();
                let out = eval.mod_switch(c).map_err(eval_err)?;
                us = t0.elapsed().as_secs_f64() * 1e6;
                Val::Cipher(out)
            }
            Op::Upscale { target_bits, .. } => {
                let Val::Cipher(c) = &operands[0].0 else {
                    unreachable!("cipher upscale")
                };
                let delta = target_bits - c.scale_bits;
                let ones =
                    self.encode_replicated("<unit>", &vec![1.0; self.vec_size], delta, c.level)?;
                let t0 = Instant::now();
                let mut out = eval.mul_plain(c, &ones).map_err(eval_err)?;
                us = t0.elapsed().as_secs_f64() * 1e6;
                out.scale_bits = *target_bits;
                Val::Cipher(out)
            }
            Op::Downscale(..) => {
                let Val::Cipher(c) = &operands[0].0 else {
                    unreachable!("cipher downscale")
                };
                // Multiply by 1 at scale S_f + S_w − j, then rescale: the
                // scale lands exactly on the waterline (nominally).
                let target = prog.cfg.waterline;
                let delta = self.sf + target - c.scale_bits;
                let ones =
                    self.encode_replicated("<unit>", &vec![1.0; self.vec_size], delta, c.level)?;
                let t0 = Instant::now();
                let up = eval.mul_plain(c, &ones).map_err(eval_err)?;
                let mut out = eval.rescale(&up).map_err(eval_err)?;
                us = t0.elapsed().as_secs_f64() * 1e6;
                out.scale_bits = target;
                Val::Cipher(out)
            }
        };
        Ok((value, us))
    }

    fn inject_fault(&self, i: usize, value: &mut OpValue) -> f64 {
        let mut injected_var = 0.0;
        let basis = self.params.basis();
        if let (Some(fault), Val::Cipher(c)) = (&self.fault, &mut value.0) {
            match fault {
                FaultPlan::CorruptLimb { at, limb } if *at == i => {
                    // Stuck-limb model: write the prime itself — one past
                    // the valid residue range [0, p).
                    let row = *limb % c.c0.prefix();
                    let p = basis.prime(row);
                    c.c0.residue_mut(row)[0] = p;
                }
                FaultPlan::PerturbScale { at, delta_bits } if *at == i => {
                    c.scale_bits += delta_bits;
                }
                FaultPlan::ExhaustNoise { at } if *at == i => {
                    // Add the constant polynomial A = 2^(s+1) to c0: every
                    // decoded slot shifts by A / 2^s = 2.0. Real corruption
                    // — decryption without the guard returns garbage.
                    let amp = (2.0f64).powf((c.scale_bits + 1.0).min(62.0)) as u64;
                    let ntt = c.c0.is_ntt();
                    for row in 0..c.c0.prefix() {
                        let p = basis.prime(row);
                        let r = c.c0.residue_mut(row);
                        if ntt {
                            for x in r.iter_mut() {
                                *x = (*x + amp % p) % p;
                            }
                        } else {
                            r[0] = (r[0] + amp % p) % p;
                        }
                    }
                    injected_var = 4.0;
                }
                _ => {}
            }
        }
        injected_var
    }

    fn check_guards(&self, i: usize, value: &OpValue) -> Result<(), ExecError> {
        let basis = self.params.basis();
        if let (Val::Cipher(c), true) = (&value.0, self.guard.metadata_checks) {
            let ty = self.prog.types[i];
            let want_scale = ty.scale().unwrap_or(c.scale_bits);
            let want_level = ty.level().unwrap_or(c.level);
            if (c.scale_bits - want_scale).abs() > 1e-3 {
                return Err(ExecError::Guard {
                    at: i,
                    detail: format!(
                        "scale 2^{:.3} disagrees with compiled 2^{want_scale:.3}",
                        c.scale_bits
                    ),
                });
            }
            if c.level != want_level || c.prefix() != self.chain_len - want_level {
                return Err(ExecError::Guard {
                    at: i,
                    detail: format!(
                        "level {} / prefix {} disagree with compiled level {want_level} (chain {})",
                        c.level,
                        c.prefix(),
                        self.chain_len
                    ),
                });
            }
        }
        if let (Val::Cipher(c), true) = (&value.0, self.guard.validate_repr) {
            for poly in [&c.c0, &c.c1] {
                for row in 0..poly.prefix() {
                    let p = basis.prime(row);
                    if let Some(bad) = poly.residue(row).iter().find(|&&x| x >= p) {
                        return Err(ExecError::Guard {
                            at: i,
                            detail: format!("residue {bad} out of range for prime {p} (row {row})"),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Recovers the broadcastable data behind a plain value (a chain of
    /// encode/modswitch/upscale over a constant).
    fn plain_source_data(&self, v: ValueId) -> Vec<f64> {
        let mut cur = v;
        loop {
            match self.prog.func.op(cur) {
                Op::Encode { value, .. } => cur = *value,
                Op::ModSwitch(x) | Op::Upscale { value: x, .. } => cur = *x,
                Op::Const { data } => {
                    return (0..self.prog.func.vec_size).map(|k| data.at(k)).collect();
                }
                other => unreachable!("plain chain hit {}", other.mnemonic()),
            }
        }
    }
}

/// Executes a compiled program under encryption, sequentially.
///
/// This is the single-threaded driver over [`ExecEngine`]: it walks the
/// SSA order, releases operands at their last use, and tracks peak
/// ciphertext liveness. The `hecate-runtime` crate provides a parallel
/// driver over the same engine.
///
/// # Errors
/// Returns [`ExecError`] on parameter, key, input, or evaluator failures.
pub fn execute_encrypted(
    prog: &CompiledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    opts: &BackendOptions,
) -> Result<EncryptedRun, ExecError> {
    let engine = ExecEngine::new(Arc::new(prog.clone()), opts)?;
    execute_sequential(&engine, inputs)
}

/// Sequential execution over an already-built engine (setup amortized).
///
/// # Errors
/// Returns [`ExecError`] on input, evaluator, or guard failures.
pub fn execute_sequential(
    engine: &ExecEngine,
    inputs: &HashMap<String, Vec<f64>>,
) -> Result<EncryptedRun, ExecError> {
    execute_sequential_with(engine, inputs, None, None)
}

/// A per-op observer for audited runs, called once per executed operation
/// after fault injection and guards with `(op index, value, predicted
/// RMS)`. The predicted RMS is the run ledger's noise estimate for cipher
/// values (0 for plain/free values). Returning an error aborts the run.
pub type OpObserver<'a> = &'a mut dyn FnMut(usize, &OpValue, f64) -> Result<(), ExecError>;

/// [`execute_sequential`] with an optional per-op observer — the hook the
/// audit driver uses to decrypt-probe intermediate values — and an
/// optional [`CancelToken`] polled between ops so a timed-out or shed run
/// stops burning cores. The observer only *reads* values (decryption does
/// not consume a ciphertext), so an observed run is bit-identical to an
/// unobserved one.
///
/// # Errors
/// Returns [`ExecError`] on input, evaluator, guard, observer, or
/// cancellation failures.
pub fn execute_sequential_with(
    engine: &ExecEngine,
    inputs: &HashMap<String, Vec<f64>>,
    observer: Option<OpObserver<'_>>,
    cancel: Option<&CancelToken>,
) -> Result<EncryptedRun, ExecError> {
    let prog = engine.prog().clone();
    let mut span = trace::span_with("execute", || {
        vec![
            ("func", prog.func.name.as_str().into()),
            ("ops", prog.func.len().into()),
            ("degree", engine.degree().into()),
            ("chain_len", engine.chain_len().into()),
        ]
    });
    let pre = engine.encrypt_inputs(inputs)?;
    let core = drive_ops(engine, pre, observer, cancel)?;

    let mut outputs = HashMap::new();
    for (name, v) in prog.func.outputs() {
        outputs.insert(name.clone(), engine.decrypt_output(&core.vals[&v.index()]));
    }

    engine.publish_precision(&core.ledger);
    span.attr("total_us", core.total_us.into());
    span.attr("min_margin_bits", core.ledger.min_margin_bits().into());
    Ok(EncryptedRun {
        outputs,
        total_us: core.total_us,
        op_us: core.op_us,
        peak_live: core.peak_live,
        peak_bytes: core.peak_bytes,
        degree: engine.degree(),
        chain_len: engine.chain_len(),
        min_margin_bits: core.ledger.min_margin_bits(),
    })
}

/// The result of one packed run serving several tenants from a shared
/// ciphertext.
#[derive(Debug)]
pub struct BatchRun {
    /// Per-tenant decrypted, demultiplexed outputs, in block order.
    pub tenant_outputs: Vec<HashMap<String, Vec<f64>>>,
    /// Total homomorphic execution time for the whole batch, µs.
    pub total_us: f64,
    /// Per-operation time, µs (shared across the batch).
    pub op_us: Vec<f64>,
    /// Peak number of simultaneously live ciphertexts.
    pub peak_live: usize,
    /// Peak ciphertext working set in bytes.
    pub peak_bytes: usize,
    /// Ring degree used.
    pub degree: usize,
    /// Chain length used.
    pub chain_len: usize,
    /// Tightest scale-vs-waterline margin (bits) from the run's ledger.
    pub min_margin_bits: f64,
    /// How many tenants shared the run.
    pub occupancy: usize,
}

/// Executes a compiled program once for `tenants.len()` tenants packed
/// into disjoint slot blocks of one ciphertext, demultiplexing each
/// tenant's outputs afterwards. The engine must have been built with
/// [`BackendOptions::batch_occupancy`] equal to the tenant count (≥ 2).
///
/// The observer and cancel token behave exactly as in
/// [`execute_sequential_with`]; the run's [`NoiseLedger`] bounds message
/// magnitude by the occupancy so audits of packed runs stay conservative.
///
/// # Errors
/// Returns [`ExecError`] on input, evaluator, guard, observer, or
/// cancellation failures, and [`ExecError::BatchUnsupported`] on an
/// occupancy mismatch.
pub fn execute_batched_with(
    engine: &ExecEngine,
    tenants: &[&HashMap<String, Vec<f64>>],
    observer: Option<OpObserver<'_>>,
    cancel: Option<&CancelToken>,
) -> Result<BatchRun, ExecError> {
    let prog = engine.prog().clone();
    let mut span = trace::span_with("execute", || {
        vec![
            ("func", prog.func.name.as_str().into()),
            ("ops", prog.func.len().into()),
            ("degree", engine.degree().into()),
            ("chain_len", engine.chain_len().into()),
            ("occupancy", engine.occupancy().into()),
        ]
    });
    let pre = engine.encrypt_inputs_packed(tenants)?;
    let core = drive_ops(engine, pre, observer, cancel)?;

    let mut tenant_outputs: Vec<HashMap<String, Vec<f64>>> =
        vec![HashMap::new(); engine.occupancy()];
    for (name, v) in prog.func.outputs() {
        let demuxed = engine.demux_value(&core.vals[&v.index()], v.index());
        for (t, data) in demuxed.into_iter().enumerate() {
            tenant_outputs[t].insert(name.clone(), data);
        }
    }

    engine.publish_precision(&core.ledger);
    span.attr("total_us", core.total_us.into());
    span.attr("min_margin_bits", core.ledger.min_margin_bits().into());
    Ok(BatchRun {
        tenant_outputs,
        total_us: core.total_us,
        op_us: core.op_us,
        peak_live: core.peak_live,
        peak_bytes: core.peak_bytes,
        degree: engine.degree(),
        chain_len: engine.chain_len(),
        min_margin_bits: core.ledger.min_margin_bits(),
        occupancy: engine.occupancy(),
    })
}

/// What [`drive_ops`] hands back: the surviving value table (outputs are
/// always alive at the end) plus the run's timing, liveness, and ledger.
struct CoreRun {
    vals: HashMap<usize, OpValue>,
    op_us: Vec<f64>,
    total_us: f64,
    peak_live: usize,
    peak_bytes: usize,
    ledger: NoiseLedger,
}

/// The shared sequential interpreter loop: walks SSA order over
/// pre-encrypted inputs, executes each op, runs guards/noise/ledger,
/// calls the observer, and releases operands at their last use. Both the
/// solo and the packed drivers wrap this; they differ only in how inputs
/// are encrypted and outputs decrypted.
fn drive_ops(
    engine: &ExecEngine,
    mut pre: Vec<Option<OpValue>>,
    mut observer: Option<OpObserver<'_>>,
    cancel: Option<&CancelToken>,
) -> Result<CoreRun, ExecError> {
    let prog = engine.prog().clone();
    let last = last_uses(&prog.func);
    let mut monitor = engine.new_monitor();
    let mut ledger = NoiseLedger::with_occupancy(&prog, engine.degree(), engine.occupancy());
    let hoist = HoistState::default();

    let mut vals: HashMap<usize, OpValue> = HashMap::new();
    let mut op_us = vec![0.0f64; prog.func.len()];
    let mut total_us = 0.0;
    let mut live_cipher = 0usize;
    let mut peak_live = 0usize;
    let mut peak_bytes = 0usize;

    for (i, op) in prog.func.ops().iter().enumerate() {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(ExecError::Cancelled { at: i });
        }
        let (value, injected_var) = if let Some(mut input_val) = pre[i].take() {
            let injected = engine.admit_value(i, &mut input_val)?;
            (input_val, injected)
        } else {
            let operand_vals: Vec<&OpValue> =
                op.operands().iter().map(|v| &vals[&v.index()]).collect();
            let (value, us, injected) = engine.exec_op_with(i, &operand_vals, Some(&hoist))?;
            op_us[i] = us;
            total_us += us;
            (value, injected)
        };
        if let Some(m) = monitor.as_mut() {
            engine.check_noise(m, i, injected_var)?;
        }
        // The precision ledger always runs: its per-op cost (a few float
        // ops) is invisible next to the NTT kernels, and emitting marks is
        // gated inside the tracer. Recording never touches ciphertext
        // bits, so runs are bit-identical with or without a consumer.
        let predicted_rms = match ledger.record(&prog, i, injected_var) {
            Some(e) => {
                let (op, level) = (e.op, e.level);
                let (scale_bits, rms) = (e.scale_bits, e.predicted_rms);
                let (margin, budget) = (e.margin_bits, e.budget_bits);
                let mnemonic = e.mnemonic;
                trace::mark_with("precision", || {
                    vec![
                        ("i", op.into()),
                        ("op", mnemonic.into()),
                        ("level", level.into()),
                        ("scale_bits", scale_bits.into()),
                        ("predicted_rms", rms.into()),
                        ("margin_bits", margin.into()),
                        ("budget_bits", budget.into()),
                    ]
                });
                rms
            }
            None => 0.0,
        };
        if let Some(obs) = observer.as_mut() {
            obs(i, &value, predicted_rms)?;
        }
        if value.is_cipher() {
            live_cipher += 1;
            peak_live = peak_live.max(live_cipher);
            peak_bytes = peak_bytes.max(live_bytes(&vals, &value, engine.degree()));
        }
        vals.insert(i, value);
        // Liveness-driven release: drop operands whose last use was here.
        for v in op.operands() {
            if last[v.index()] == i {
                if let Some(val) = vals.get(&v.index()) {
                    if val.is_cipher() {
                        live_cipher -= 1;
                    }
                }
                vals.remove(&v.index());
            }
        }
    }

    Ok(CoreRun {
        vals,
        op_us,
        total_us,
        peak_live,
        peak_bytes,
        ledger,
    })
}

/// Bytes held by the currently live ciphertexts plus the value being
/// defined (two polynomials of `prefix` residue rows each).
fn live_bytes(vals: &HashMap<usize, OpValue>, pending: &OpValue, degree: usize) -> usize {
    pending.cipher_bytes(degree) + vals.values().map(|v| v.cipher_bytes(degree)).sum::<usize>()
}
