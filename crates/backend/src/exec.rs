//! Encrypted execution of compiled programs on the RNS-CKKS backend.
//!
//! The executor lowers a [`CompiledProgram`] onto [`hecate_ckks`]: it
//! builds the selected parameter set, generates exactly the evaluation
//! keys the program needs, encrypts the inputs, interprets the IR with
//! per-operation wall-clock timing, and decrypts the outputs.
//!
//! Two conventions matter:
//!
//! - **Nominal scales.** Compiler scales are nominal log2 bits. After each
//!   `rescale`, the actual scale differs from nominal by
//!   `S_f − log2(q_dropped)` (a ~2⁻²⁰ relative offset); the executor
//!   re-declares the nominal scale, exactly as EVA does on SEAL, and the
//!   offset is absorbed into the measured error.
//! - **Replication.** A program with logical vector width `w` runs on a
//!   ring with `N/2 ≥ w` slots by replicating every input and constant
//!   `N/2 / w` times. Cyclic rotation of a periodic vector rotates every
//!   window, so IR rotation semantics are preserved for any power-of-two
//!   `w` dividing the slot count.

use crate::liveness::last_uses;
use hecate_ckks::encoder::EncodeError;
use hecate_ckks::eval::EvalError;
use hecate_ckks::params::ParamsError;
use hecate_ckks::{
    Ciphertext, CkksEncoder, CkksParams, Decryptor, Encryptor, EvalKeys, Evaluator, KeyGenerator,
    Plaintext,
};
use hecate_compiler::CompiledProgram;
use hecate_ir::{Op, ValueId};
use std::collections::HashMap;
use std::time::Instant;

/// Backend execution options.
#[derive(Debug, Clone)]
pub struct BackendOptions {
    /// Run at this ring degree instead of the compiled (security-selected)
    /// one — the reduced-scale mode used by default in the benchmark
    /// harness.
    pub degree_override: Option<usize>,
    /// Seed for key generation and encryption randomness.
    pub seed: u64,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions {
            degree_override: None,
            seed: 0xC0FFEE,
        }
    }
}

/// Errors from encrypted execution.
#[derive(Debug)]
pub enum ExecError {
    /// Parameter construction failed.
    Params(ParamsError),
    /// Encoding failed.
    Encode(EncodeError),
    /// A homomorphic operation failed (indicates a compiler bug).
    Eval {
        /// The operation index.
        at: usize,
        /// The underlying evaluator error.
        source: EvalError,
    },
    /// The program's vector width does not fit or divide the slot count.
    BadVectorWidth {
        /// Logical width.
        vec_size: usize,
        /// Available slots.
        slots: usize,
    },
    /// An input binding is missing.
    MissingInput {
        /// The unbound name.
        name: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Params(e) => write!(f, "parameter error: {e}"),
            ExecError::Encode(e) => write!(f, "encode error: {e}"),
            ExecError::Eval { at, source } => write!(f, "evaluation error at op {at}: {source}"),
            ExecError::BadVectorWidth { vec_size, slots } => {
                write!(f, "vector width {vec_size} incompatible with {slots} slots")
            }
            ExecError::MissingInput { name } => write!(f, "no binding for input '{name}'"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ParamsError> for ExecError {
    fn from(e: ParamsError) -> Self {
        ExecError::Params(e)
    }
}

impl From<EncodeError> for ExecError {
    fn from(e: EncodeError) -> Self {
        ExecError::Encode(e)
    }
}

/// The result of one encrypted run.
#[derive(Debug)]
pub struct EncryptedRun {
    /// Decrypted, decoded outputs (first `vec_size` slots).
    pub outputs: HashMap<String, Vec<f64>>,
    /// Total homomorphic execution time, microseconds (setup, encryption,
    /// and decryption excluded — matching the paper's latency metric).
    pub total_us: f64,
    /// Per-operation time, microseconds (zero for non-runtime ops).
    pub op_us: Vec<f64>,
    /// Peak number of simultaneously live ciphertexts.
    pub peak_live: usize,
    /// Peak ciphertext working set in bytes (liveness-planned; the paper's
    /// SEAL dialect optimizes memory the same way).
    pub peak_bytes: usize,
    /// Ring degree used.
    pub degree: usize,
    /// Chain length used.
    pub chain_len: usize,
}

enum Val {
    Free(Vec<f64>),
    Plain(Plaintext),
    Cipher(Ciphertext),
}

/// Builds the [`CkksParams`] a compiled program calls for.
///
/// # Errors
/// Propagates parameter-construction failures.
pub fn build_params(
    prog: &CompiledProgram,
    opts: &BackendOptions,
) -> Result<CkksParams, ExecError> {
    let degree = opts.degree_override.unwrap_or(prog.params.degree);
    Ok(CkksParams::new(
        degree,
        prog.params.q0_bits.clamp(24, 60),
        prog.params.sf_bits,
        prog.params.chain_len - 1,
        false,
    )?)
}

/// Collects the evaluation keys a program needs: relinearization prefixes
/// and `(rotation step, prefix)` pairs.
pub fn key_requirements(
    prog: &CompiledProgram,
    slots: usize,
    chain_len: usize,
) -> (Vec<usize>, Vec<(usize, usize)>) {
    let mut relin = Vec::new();
    let mut rot = Vec::new();
    for (i, op) in prog.func.ops().iter().enumerate() {
        let level = |v: &ValueId| prog.types[v.index()].level().unwrap_or(0);
        match op {
            Op::Mul(a, b) => {
                let both_cipher = prog.types[a.index()].is_cipher() && prog.types[b.index()].is_cipher();
                if both_cipher {
                    relin.push(chain_len - level(a));
                }
            }
            Op::Rotate { value, step } => {
                let s = step % slots;
                if s != 0 {
                    rot.push((s, chain_len - level(value)));
                }
            }
            _ => {}
        }
        let _ = i;
    }
    relin.sort_unstable();
    relin.dedup();
    rot.sort_unstable();
    rot.dedup();
    (relin, rot)
}

fn replicate(data: &[f64], vec_size: usize, slots: usize) -> Vec<f64> {
    let mut window = data.to_vec();
    window.resize(vec_size, 0.0);
    let mut out = Vec::with_capacity(slots);
    while out.len() < slots {
        out.extend_from_slice(&window);
    }
    out.truncate(slots);
    out
}

/// Executes a compiled program under encryption.
///
/// # Errors
/// Returns [`ExecError`] on parameter, key, input, or evaluator failures.
pub fn execute_encrypted(
    prog: &CompiledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    opts: &BackendOptions,
) -> Result<EncryptedRun, ExecError> {
    let params = build_params(prog, opts)?;
    let slots = params.slots();
    let vec_size = prog.func.vec_size;
    if vec_size > slots || !vec_size.is_power_of_two() {
        return Err(ExecError::BadVectorWidth { vec_size, slots });
    }
    let chain_len = params.basis().chain_len();
    let encoder = CkksEncoder::new(&params);
    let mut kg = KeyGenerator::new(&params, opts.seed);
    let pk = kg.public_key();
    let (relin, rot) = key_requirements(prog, slots, chain_len);
    let keys = EvalKeys::generate(&mut kg, &relin, &rot);
    let mut encryptor = Encryptor::new(&params, pk, opts.seed.wrapping_add(1));
    let decryptor = Decryptor::new(&params, kg.secret_key().clone());
    let eval = Evaluator::new(&params, keys);

    let sf = prog.cfg.rescale_bits;
    let last = last_uses(&prog.func);
    let mut vals: HashMap<usize, Val> = HashMap::new();
    let mut op_us = vec![0.0f64; prog.func.len()];
    let mut total_us = 0.0;
    let mut live_cipher = 0usize;
    let mut peak_live = 0usize;
    let mut peak_bytes = 0usize;

    let basis = params.basis();
    let encode_replicated = |data: &[f64], scale: f64, level: usize| -> Result<Plaintext, ExecError> {
        let rep = replicate(data, vec_size, slots);
        let mut pt = encoder.encode(&rep, scale, level)?;
        // Plaintexts are prepared ahead of execution in NTT form, as SEAL
        // does, so ct⊙pt operations cost a pointwise pass only.
        pt.poly.to_ntt(basis);
        Ok(pt)
    };

    for (i, op) in prog.func.ops().iter().enumerate() {
        let ty = prog.types[i];
        let eval_err = |source: EvalError| ExecError::Eval { at: i, source };
        let value: Val = match op {
            Op::Input { name } => {
                let data = inputs
                    .get(name)
                    .ok_or_else(|| ExecError::MissingInput { name: name.clone() })?;
                let pt = encode_replicated(data, ty.scale().expect("cipher input"), 0)?;
                Val::Cipher(encryptor.encrypt(&pt))
            }
            Op::Const { data } => {
                Val::Free((0..vec_size).map(|k| data.at(k)).collect())
            }
            Op::Encode { value, scale_bits, level } => {
                let Val::Free(data) = &vals[&value.index()] else {
                    unreachable!("encode takes a free operand");
                };
                Val::Plain(encode_replicated(data, *scale_bits, *level)?)
            }
            Op::ModSwitch(v) | Op::Upscale { value: v, .. }
                if prog.types[v.index()].is_plain() =>
            {
                // Plaintext scale management is symbolic: re-encode the
                // underlying data at the new (scale, level).
                let data = plain_source_data(prog, *v, &vals);
                Val::Plain(encode_replicated(
                    &data,
                    ty.scale().expect("plain"),
                    ty.level().expect("plain"),
                )?)
            }
            Op::Add(a, b) | Op::Sub(a, b) => {
                let t0 = Instant::now();
                let out = match (&vals[&a.index()], &vals[&b.index()]) {
                    (Val::Cipher(ca), Val::Cipher(cb)) => {
                        if matches!(op, Op::Add(..)) {
                            eval.add(ca, cb).map_err(eval_err)?
                        } else {
                            eval.sub(ca, cb).map_err(eval_err)?
                        }
                    }
                    (Val::Cipher(ca), Val::Plain(pb)) => {
                        if matches!(op, Op::Add(..)) {
                            eval.add_plain(ca, pb).map_err(eval_err)?
                        } else {
                            let mut neg = ca.clone();
                            neg = eval.negate(&neg);
                            let s = eval.add_plain(&neg, pb).map_err(eval_err)?;
                            eval.negate(&s)
                        }
                    }
                    (Val::Plain(pa), Val::Cipher(cb)) => {
                        if matches!(op, Op::Add(..)) {
                            eval.add_plain(cb, pa).map_err(eval_err)?
                        } else {
                            // pa − cb = −(cb − pa)
                            let s = eval.negate(cb);
                            eval.add_plain(&s, pa).map_err(eval_err)?
                        }
                    }
                    _ => unreachable!("binary op on free operands"),
                };
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                Val::Cipher(out)
            }
            Op::Mul(a, b) => {
                let t0 = Instant::now();
                let out = match (&vals[&a.index()], &vals[&b.index()]) {
                    (Val::Cipher(ca), Val::Cipher(cb)) => eval.mul(ca, cb).map_err(eval_err)?,
                    (Val::Cipher(ca), Val::Plain(pb)) => eval.mul_plain(ca, pb).map_err(eval_err)?,
                    (Val::Plain(pa), Val::Cipher(cb)) => eval.mul_plain(cb, pa).map_err(eval_err)?,
                    _ => unreachable!("binary op on free operands"),
                };
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                Val::Cipher(out)
            }
            Op::Negate(v) => {
                let Val::Cipher(c) = &vals[&v.index()] else {
                    unreachable!("negate on cipher")
                };
                let t0 = Instant::now();
                let out = eval.negate(c);
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                Val::Cipher(out)
            }
            Op::Rotate { value, step } => {
                let Val::Cipher(c) = &vals[&value.index()] else {
                    unreachable!("rotate on cipher")
                };
                let t0 = Instant::now();
                let out = eval.rotate(c, step % slots).map_err(eval_err)?;
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                Val::Cipher(out)
            }
            Op::Rescale(v) => {
                let Val::Cipher(c) = &vals[&v.index()] else {
                    unreachable!("rescale on cipher")
                };
                let t0 = Instant::now();
                let mut out = eval.rescale(c).map_err(eval_err)?;
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                // Nominal scale declaration (see module docs).
                out.scale_bits = c.scale_bits - sf;
                Val::Cipher(out)
            }
            Op::ModSwitch(v) => {
                let Val::Cipher(c) = &vals[&v.index()] else {
                    unreachable!("cipher modswitch")
                };
                let t0 = Instant::now();
                let out = eval.mod_switch(c).map_err(eval_err)?;
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                Val::Cipher(out)
            }
            Op::Upscale { value, target_bits } => {
                let Val::Cipher(c) = &vals[&value.index()] else {
                    unreachable!("cipher upscale")
                };
                let delta = target_bits - c.scale_bits;
                let ones = encode_replicated(&vec![1.0; vec_size], delta, c.level)?;
                let t0 = Instant::now();
                let mut out = eval.mul_plain(c, &ones).map_err(eval_err)?;
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                out.scale_bits = *target_bits;
                Val::Cipher(out)
            }
            Op::Downscale(v) => {
                let Val::Cipher(c) = &vals[&v.index()] else {
                    unreachable!("cipher downscale")
                };
                // Multiply by 1 at scale S_f + S_w − j, then rescale: the
                // scale lands exactly on the waterline (nominally).
                let target = prog.cfg.waterline;
                let delta = sf + target - c.scale_bits;
                let ones = encode_replicated(&vec![1.0; vec_size], delta, c.level)?;
                let t0 = Instant::now();
                let up = eval.mul_plain(c, &ones).map_err(eval_err)?;
                let mut out = eval.rescale(&up).map_err(eval_err)?;
                op_us[i] = t0.elapsed().as_secs_f64() * 1e6;
                total_us += op_us[i];
                out.scale_bits = target;
                Val::Cipher(out)
            }
        };
        if matches!(value, Val::Cipher(_)) {
            live_cipher += 1;
            peak_live = peak_live.max(live_cipher);
            peak_bytes = peak_bytes.max(live_bytes(&vals, &value, params.degree()));
        }
        vals.insert(i, value);
        // Liveness-driven release: drop operands whose last use was here.
        for v in op.operands() {
            if last[v.index()] == i {
                if let Some(Val::Cipher(_)) = vals.get(&v.index()) {
                    live_cipher -= 1;
                }
                vals.remove(&v.index());
            }
        }
    }

    let mut outputs = HashMap::new();
    for (name, v) in prog.func.outputs() {
        let out = match &vals[&v.index()] {
            Val::Cipher(c) => {
                let mut decoded = encoder.decode(&decryptor.decrypt(c));
                decoded.truncate(vec_size);
                decoded
            }
            Val::Plain(p) => {
                let mut decoded = encoder.decode(p);
                decoded.truncate(vec_size);
                decoded
            }
            Val::Free(d) => d.clone(),
        };
        outputs.insert(name.clone(), out);
    }

    Ok(EncryptedRun {
        outputs,
        total_us,
        op_us,
        peak_live,
        peak_bytes,
        degree: params.degree(),
        chain_len,
    })
}

/// Bytes held by the currently live ciphertexts plus the value being
/// defined (two polynomials of `prefix` residue rows each).
fn live_bytes(vals: &HashMap<usize, Val>, pending: &Val, degree: usize) -> usize {
    let ct_bytes = |c: &Ciphertext| 2 * c.prefix() * degree * std::mem::size_of::<u64>();
    let mut total = match pending {
        Val::Cipher(c) => ct_bytes(c),
        _ => 0,
    };
    for v in vals.values() {
        if let Val::Cipher(c) = v {
            total += ct_bytes(c);
        }
    }
    total
}

/// Recovers the broadcastable data behind a plain value (a chain of
/// encode/modswitch/upscale over a constant).
fn plain_source_data(prog: &CompiledProgram, v: ValueId, _vals: &HashMap<usize, Val>) -> Vec<f64> {
    let mut cur = v;
    loop {
        match prog.func.op(cur) {
            Op::Encode { value, .. } => cur = *value,
            Op::ModSwitch(x) | Op::Upscale { value: x, .. } => cur = *x,
            Op::Const { data } => {
                return (0..prog.func.vec_size).map(|k| data.at(k)).collect();
            }
            other => unreachable!("plain chain hit {}", other.mnemonic()),
        }
    }
}
