//! Runtime fault injection for exercising the executor's guard rails.
//!
//! A [`FaultPlan`] tells [`execute_encrypted`](crate::exec::execute_encrypted)
//! to sabotage one step of an otherwise-correct encrypted run. Each variant
//! models a realistic failure (a flipped limb, a metadata bug, a skipped
//! scale-management or relinearization step, a noise blow-up), and each has
//! a designated guard that must catch it:
//!
//! | fault | detected by |
//! |---|---|
//! | [`FaultPlan::CorruptLimb`] | representation validity scan (residue ≥ its prime) |
//! | [`FaultPlan::PerturbScale`] | metadata check against the compiled types |
//! | [`FaultPlan::DropRescale`] | metadata check (level and scale both wrong) |
//! | [`FaultPlan::SkipRelin`] | clean `MissingKey` error from the evaluator |
//! | [`FaultPlan::ExhaustNoise`] | noise-budget monitor (`BudgetExhausted`) |
//!
//! The fault-injection tests in `crates/backend/tests/fault_injection.rs`
//! prove the table: every variant yields a structured error, never a panic
//! and never a silently wrong plaintext.

/// One injected fault, applied during encrypted execution.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlan {
    /// Overwrite one RNS residue row of the result of op `at` with a value
    /// outside its prime's range (a model of a flipped/stuck limb).
    CorruptLimb {
        /// Operation index whose result is corrupted.
        at: usize,
        /// Residue row to corrupt (taken modulo the active prefix).
        limb: usize,
    },
    /// Perturb the declared scale of the result of op `at` by
    /// `delta_bits` without touching the payload — the metadata lies.
    PerturbScale {
        /// Operation index whose scale is perturbed.
        at: usize,
        /// Log2-bits of perturbation (ε).
        delta_bits: f64,
    },
    /// Skip the rescale at op `at` entirely: the value passes through with
    /// its level and scale unchanged.
    DropRescale {
        /// Index of the rescale operation to drop.
        at: usize,
    },
    /// Generate no relinearization keys, so the first cipher–cipher
    /// multiplication cannot relinearize.
    SkipRelin,
    /// Inject real noise into the result of op `at`, large enough to
    /// exhaust the noise budget (adds ~2.0 absolute error per slot).
    ExhaustNoise {
        /// Operation index at which the budget blows up.
        at: usize,
    },
}

impl FaultPlan {
    /// The op index the fault targets, if it targets one.
    pub fn at(&self) -> Option<usize> {
        match self {
            FaultPlan::CorruptLimb { at, .. }
            | FaultPlan::PerturbScale { at, .. }
            | FaultPlan::DropRescale { at }
            | FaultPlan::ExhaustNoise { at } => Some(*at),
            FaultPlan::SkipRelin => None,
        }
    }
}
