//! Runtime fault injection for exercising the executor's guard rails.
//!
//! A [`FaultPlan`] tells [`execute_encrypted`](crate::exec::execute_encrypted)
//! to sabotage one step of an otherwise-correct encrypted run. Each variant
//! models a realistic failure (a flipped limb, a metadata bug, a skipped
//! scale-management or relinearization step, a noise blow-up), and each has
//! a designated guard that must catch it:
//!
//! | fault | detected by |
//! |---|---|
//! | [`FaultPlan::CorruptLimb`] | representation validity scan (residue ≥ its prime) |
//! | [`FaultPlan::PerturbScale`] | metadata check against the compiled types |
//! | [`FaultPlan::DropRescale`] | metadata check (level and scale both wrong) |
//! | [`FaultPlan::SkipRelin`] | clean `MissingKey` error from the evaluator |
//! | [`FaultPlan::ExhaustNoise`] | noise-budget monitor (`BudgetExhausted`) |
//!
//! The fault-injection tests in `crates/backend/tests/fault_injection.rs`
//! prove the table: every variant yields a structured error, never a panic
//! and never a silently wrong plaintext.

/// One injected fault, applied during encrypted execution.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlan {
    /// Overwrite one RNS residue row of the result of op `at` with a value
    /// outside its prime's range (a model of a flipped/stuck limb).
    CorruptLimb {
        /// Operation index whose result is corrupted.
        at: usize,
        /// Residue row to corrupt (taken modulo the active prefix).
        limb: usize,
    },
    /// Perturb the declared scale of the result of op `at` by
    /// `delta_bits` without touching the payload — the metadata lies.
    PerturbScale {
        /// Operation index whose scale is perturbed.
        at: usize,
        /// Log2-bits of perturbation (ε).
        delta_bits: f64,
    },
    /// Skip the rescale at op `at` entirely: the value passes through with
    /// its level and scale unchanged.
    DropRescale {
        /// Index of the rescale operation to drop.
        at: usize,
    },
    /// Generate no relinearization keys, so the first cipher–cipher
    /// multiplication cannot relinearize.
    SkipRelin,
    /// Inject real noise into the result of op `at`, large enough to
    /// exhaust the noise budget (adds ~2.0 absolute error per slot).
    ExhaustNoise {
        /// Operation index at which the budget blows up.
        at: usize,
    },
}

impl FaultPlan {
    /// The op index the fault targets, if it targets one.
    pub fn at(&self) -> Option<usize> {
        match self {
            FaultPlan::CorruptLimb { at, .. }
            | FaultPlan::PerturbScale { at, .. }
            | FaultPlan::DropRescale { at }
            | FaultPlan::ExhaustNoise { at } => Some(*at),
            FaultPlan::SkipRelin => None,
        }
    }

    /// Parses the compact fault syntax used by `hecatec --chaos-fault`:
    ///
    /// ```text
    /// corrupt-limb@AT:LIMB | perturb-scale@AT:BITS | drop-rescale@AT
    /// skip-relin           | exhaust-noise@AT
    /// ```
    ///
    /// # Errors
    /// Returns a human-readable message for unknown kinds or malformed
    /// numeric fields.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (kind, rest) = match spec.split_once('@') {
            Some((k, r)) => (k, Some(r)),
            None => (spec, None),
        };
        let err = || format!("bad fault spec '{spec}'");
        let at = |r: Option<&str>| r.and_then(|r| r.parse::<usize>().ok()).ok_or_else(err);
        match kind {
            "corrupt-limb" => {
                let (a, l) = rest.and_then(|r| r.split_once(':')).ok_or_else(err)?;
                Ok(FaultPlan::CorruptLimb {
                    at: a.parse().map_err(|_| err())?,
                    limb: l.parse().map_err(|_| err())?,
                })
            }
            "perturb-scale" => {
                let (a, d) = rest.and_then(|r| r.split_once(':')).ok_or_else(err)?;
                Ok(FaultPlan::PerturbScale {
                    at: a.parse().map_err(|_| err())?,
                    delta_bits: d.parse().map_err(|_| err())?,
                })
            }
            "drop-rescale" => Ok(FaultPlan::DropRescale { at: at(rest)? }),
            "skip-relin" => Ok(FaultPlan::SkipRelin),
            "exhaust-noise" => Ok(FaultPlan::ExhaustNoise { at: at(rest)? }),
            _ => Err(err()),
        }
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlan::CorruptLimb { at, limb } => write!(f, "corrupt-limb@{at}:{limb}"),
            FaultPlan::PerturbScale { at, delta_bits } => {
                write!(f, "perturb-scale@{at}:{delta_bits}")
            }
            FaultPlan::DropRescale { at } => write!(f, "drop-rescale@{at}"),
            FaultPlan::SkipRelin => write!(f, "skip-relin"),
            FaultPlan::ExhaustNoise { at } => write!(f, "exhaust-noise@{at}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_variant() {
        let plans = [
            FaultPlan::CorruptLimb { at: 3, limb: 1 },
            FaultPlan::PerturbScale {
                at: 0,
                delta_bits: 1.5,
            },
            FaultPlan::DropRescale { at: 2 },
            FaultPlan::SkipRelin,
            FaultPlan::ExhaustNoise { at: 4 },
        ];
        for plan in plans {
            let spec = plan.to_string();
            assert_eq!(FaultPlan::parse(&spec).unwrap(), plan, "spec {spec}");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "bogus",
            "corrupt-limb",
            "corrupt-limb@1",
            "drop-rescale@x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
