//! Backend profiling: builds the measured cost table the paper's
//! performance estimator runs on (§VI-C).
//!
//! Each homomorphic operation is timed at every active-prime count of a
//! representative chain; the estimator then prices a compiled program by
//! summing table entries. The paper profiles SEAL the same way and finds
//! the per-op variance small enough for a 1.3% geomean estimation error.

use crate::exec::ExecError;
use hecate_ckks::{CkksEncoder, CkksParams, Encryptor, EvalKeys, Evaluator, KeyGenerator};
use hecate_compiler::{CostOp, CostTable};
use std::time::Instant;

/// Profiles every [`CostOp`] at every prefix of a `chain_len`-prime chain
/// at ring degree `degree`, timing each `reps` times and recording the
/// average.
///
/// # Errors
/// Returns [`ExecError`] if parameters or encodings fail.
pub fn profile_cost_table(
    degree: usize,
    q0_bits: u32,
    sf_bits: u32,
    chain_len: usize,
    reps: usize,
    seed: u64,
) -> Result<CostTable, ExecError> {
    assert!(chain_len >= 2, "profiling needs at least two primes");
    let params = CkksParams::new(degree, q0_bits, sf_bits, chain_len - 1, false)?;
    let encoder = CkksEncoder::new(&params);
    let mut kg = KeyGenerator::new(&params, seed);
    let pk = kg.public_key();
    let relin: Vec<usize> = (1..=chain_len).collect();
    let rots: Vec<(usize, usize)> = (1..=chain_len).map(|c| (1usize, c)).collect();
    let keys = EvalKeys::generate(&mut kg, &relin, &rots);
    let mut encryptor = Encryptor::new(&params, pk, seed.wrapping_add(1));
    let eval = Evaluator::new(&params, keys);

    let mut table = CostTable::new(degree);
    let scale = (q0_bits.min(sf_bits) as f64 - 10.0).max(20.0);
    let data: Vec<f64> = (0..params.slots()).map(|i| (i % 7) as f64 * 0.25).collect();

    for level in 0..chain_len {
        let c = chain_len - level;
        let mut pt = encoder.encode(&data, scale, level)?;
        let ct = encryptor.encrypt(&pt);
        let ct2 = encryptor.encrypt(&pt);
        pt.poly.to_ntt(params.basis());

        let time = |f: &mut dyn FnMut()| -> f64 {
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e6 / reps as f64
        };

        table.set(
            CostOp::AddCC,
            c,
            time(&mut || {
                eval.add(&ct, &ct2).expect("add");
            }),
        );
        table.set(
            CostOp::AddCP,
            c,
            time(&mut || {
                eval.add_plain(&ct, &pt).expect("add_plain");
            }),
        );
        table.set(
            CostOp::Negate,
            c,
            time(&mut || {
                eval.negate(&ct);
            }),
        );
        table.set(
            CostOp::MulCP,
            c,
            time(&mut || {
                eval.mul_plain(&ct, &pt).expect("mul_plain");
            }),
        );
        table.set(
            CostOp::MulCC,
            c,
            time(&mut || {
                eval.mul(&ct, &ct2).expect("mul");
            }),
        );
        table.set(
            CostOp::Rotate,
            c,
            time(&mut || {
                eval.rotate(&ct, 1).expect("rotate");
            }),
        );
        // The hoisted decomposition is paid once per fan-out group (by the
        // leader, costed as Rotate), so only the per-rotation remainder is
        // timed here.
        let hd = eval.hoist(&ct);
        table.set(
            CostOp::RotateHoisted,
            c,
            time(&mut || {
                eval.rotate_hoisted(&ct, &hd, 1).expect("rotate_hoisted");
            }),
        );
        if c >= 2 {
            // Rescale needs headroom above the waterline; time on a fresh
            // product so the scale is large enough.
            let prod = eval.mul(&ct, &ct2).expect("mul for rescale");
            table.set(
                CostOp::Rescale,
                c,
                time(&mut || {
                    eval.rescale(&prod).expect("rescale");
                }),
            );
            table.set(
                CostOp::ModSwitch,
                c,
                time(&mut || {
                    eval.mod_switch(&ct).expect("modswitch");
                }),
            );
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_table_has_level_structure() {
        let t = profile_cost_table(64, 45, 30, 4, 2, 7).unwrap();
        // Multiplication must get cheaper as primes drop.
        let c4 = t.get(CostOp::MulCC, 4).unwrap();
        let c1 = t.get(CostOp::MulCC, 1).unwrap();
        assert!(c4 > c1, "mul at 4 primes ({c4}µs) vs 1 prime ({c1}µs)");
        // Every category is present at the full prefix.
        for op in CostOp::ALL {
            if matches!(op, CostOp::Rescale | CostOp::ModSwitch) {
                continue;
            }
            assert!(t.get(op, 4).is_some(), "{op:?} missing");
        }
        assert!(t.get(CostOp::Rescale, 4).is_some());
    }
}
