//! Execution backends for compiled HECATE programs.
//!
//! Three ways to run a [`hecate_compiler::CompiledProgram`]:
//!
//! - the **plaintext reference** — [`hecate_ir::interp`], the homomorphism
//!   ground truth;
//! - the **noise simulator** ([`noise`]) — plaintext semantics plus a
//!   first-order CKKS noise model, for fast RMS-error estimates during
//!   waterline sweeps;
//! - the **encrypted executor** ([`exec`]) — real RNS-CKKS execution on
//!   [`hecate_ckks`] with per-operation wall-clock timing, used for the
//!   paper's latency and error measurements.
//!
//! [`profile`] builds the measured cost table for the compiler's
//! performance estimator, and [`liveness`] provides the memory planning the
//! paper's SEAL dialect performs.
//!
//! The executor carries runtime guards ([`GuardOptions`]): per-operation
//! metadata checks against the compiled plan, residue-range validation,
//! and a [`NoiseMonitor`] that aborts with `BudgetExhausted` before a
//! garbage decryption. [`fault`] injects runtime faults to prove the
//! guards catch them.
//!
//! # Example
//!
//! Compile and run the motivating example end to end:
//!
//! ```
//! use hecate_backend::exec::{execute_encrypted, BackendOptions};
//! use hecate_compiler::{compile, CompileOptions, Scheme};
//! use hecate_ir::FunctionBuilder;
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::new("square", 8);
//! let x = b.input_cipher("x");
//! let sq = b.square(x);
//! b.output(sq);
//! let func = b.finish();
//!
//! let mut opts = CompileOptions::with_waterline(25.0);
//! opts.degree = Some(128); // toy ring for the doctest
//! let prog = compile(&func, Scheme::Hecate, &opts)?;
//!
//! let mut inputs = HashMap::new();
//! inputs.insert("x".to_string(), vec![1.5, -2.0]);
//! let run = execute_encrypted(&prog, &inputs, &BackendOptions::default())?;
//! assert!((run.outputs["out0"][0] - 2.25).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod exec;
pub mod fault;
pub mod liveness;
pub mod noise;
pub mod profile;

pub use audit::{
    audit_batched, audit_encrypted, audit_on_engine, AuditOptions, AuditReport, AuditRow,
};
pub use exec::{
    execute_batched_with, execute_encrypted, execute_sequential, execute_sequential_with,
    physical_step, rotation_fanout, BackendOptions, BatchRun, CancelToken, EncryptedRun,
    ExecEngine, ExecError, GuardOptions, HoistState, OpObserver, OpValue,
};
pub use fault::FaultPlan;
pub use noise::{
    max_rms_error, simulate, simulate_ops, LedgerEntry, NoiseLedger, NoiseMonitor, SimVal,
    SimulatedRun,
};
pub use profile::profile_cost_table;

/// Root-mean-square error between two equally long slot vectors.
pub fn rms_error(a: &[f64], b: &[f64]) -> f64 {
    hecate_ir::interp::rms_error(a, b)
}
