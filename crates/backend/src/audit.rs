//! Audited encrypted execution: predicted vs *measured* precision.
//!
//! `hecatec --audit` turns the static noise estimate into a validated
//! per-run report. An audited run executes the program twice:
//!
//! 1. in the plaintext reference semantics ([`simulate_ops`]), which
//!    yields every operation's noiseless value *and* its predicted
//!    decoded-domain RMS noise;
//! 2. under real RNS-CKKS encryption, with a per-op observer that
//!    decrypt-probes selected intermediate ciphertexts (plus every
//!    program output) through the engine's [`DecryptProbe`] and measures
//!    the actual RMS error against the reference value.
//!
//! The result is an [`AuditReport`]: one [`AuditRow`] per executed cipher
//! operation joining the run ledger's prediction (noise, waterline
//! margin, modulus budget) with the measured error where a probe ran.
//! [`AuditReport::violations`] turns it into a pass/fail verdict — a
//! measured error far above prediction means the noise model (or the
//! plan) is lying; a negative margin means the plan no longer honors the
//! waterline that guarantees output accuracy.
//!
//! Probing is read-only (CKKS decryption never mutates a ciphertext) and
//! the ledger never touches ciphertext bits, so an audited run produces
//! bit-identical outputs to an unaudited one — asserted in this module's
//! tests via `f64::to_bits`.

use crate::exec::{execute_sequential_with, BackendOptions, ExecEngine, ExecError};
use crate::noise::simulate_ops;
use hecate_compiler::CompiledProgram;
use hecate_telemetry::trace;
use std::collections::HashMap;
use std::sync::Arc;

/// Audit configuration.
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// Number of *intermediate* cipher operations to decrypt-probe, spread
    /// evenly across the program (outputs are always probed). `0` probes
    /// outputs only.
    pub checkpoints: usize,
    /// A probe violates when its measured RMS error exceeds
    /// `factor × max(predicted, floor)`.
    pub factor: f64,
    /// Absolute error floor below which a probe never violates — keeps
    /// noise-on-noise ratios at the bottom of the error scale from
    /// flagging (both predicted and measured ~1e-12, ratio meaningless).
    pub floor: f64,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            checkpoints: 4,
            factor: 10.0,
            floor: 1e-7,
        }
    }
}

/// One audited cipher operation: the ledger's prediction joined with the
/// probe's measurement (where one ran).
#[derive(Debug, Clone)]
pub struct AuditRow {
    /// Operation index.
    pub op: usize,
    /// Operation mnemonic.
    pub mnemonic: &'static str,
    /// Rescaling level of the result.
    pub level: usize,
    /// Declared scale, log2 bits.
    pub scale_bits: f64,
    /// The noise model's predicted decoded-domain RMS error.
    pub predicted_rms: f64,
    /// Measured RMS error vs the plaintext reference, at probed ops.
    pub measured_rms: Option<f64>,
    /// Scale-vs-waterline margin, bits (negative = broken plan).
    pub margin_bits: f64,
    /// Whether this value is a program output.
    pub is_output: bool,
}

/// The result of one audited run.
#[derive(Debug)]
pub struct AuditReport {
    /// One row per executed cipher operation, in execution order.
    pub rows: Vec<AuditRow>,
    /// Decrypted encrypted-run outputs.
    pub outputs: HashMap<String, Vec<f64>>,
    /// Plaintext reference outputs.
    pub reference: HashMap<String, Vec<f64>>,
    /// Tightest waterline margin across the run, bits.
    pub min_margin_bits: f64,
    /// Homomorphic execution time of the encrypted run, microseconds
    /// (probe time excluded — probes run between kernels, untimed).
    pub total_us: f64,
}

/// One audit violation, printable as a diagnostic line.
#[derive(Debug, Clone)]
pub enum AuditViolation {
    /// A probe measured far more error than the model predicted.
    ErrorBound {
        /// Operation index.
        op: usize,
        /// Measured RMS error.
        measured: f64,
        /// Predicted RMS error.
        predicted: f64,
        /// The configured violation factor.
        factor: f64,
    },
    /// An operation's scale sits below the waterline.
    NegativeMargin {
        /// Operation index.
        op: usize,
        /// The (negative) margin in bits.
        margin_bits: f64,
    },
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditViolation::ErrorBound {
                op,
                measured,
                predicted,
                factor,
            } => write!(
                f,
                "op {op}: measured rms {measured:.3e} exceeds {factor}x predicted {predicted:.3e}"
            ),
            AuditViolation::NegativeMargin { op, margin_bits } => write!(
                f,
                "op {op}: scale sits {:.2} bits BELOW the waterline",
                -margin_bits
            ),
        }
    }
}

impl AuditReport {
    /// Every violation under the given options: probed ops whose measured
    /// error exceeds `factor × max(predicted, floor)`, and every op whose
    /// waterline margin is negative.
    pub fn violations(&self, opts: &AuditOptions) -> Vec<AuditViolation> {
        let mut out = Vec::new();
        for row in &self.rows {
            if row.margin_bits < 0.0 {
                out.push(AuditViolation::NegativeMargin {
                    op: row.op,
                    margin_bits: row.margin_bits,
                });
            }
            if let Some(measured) = row.measured_rms {
                let bound = opts.factor * row.predicted_rms.max(opts.floor);
                if measured > bound {
                    out.push(AuditViolation::ErrorBound {
                        op: row.op,
                        measured,
                        predicted: row.predicted_rms,
                        factor: opts.factor,
                    });
                }
            }
        }
        out
    }

    /// The worst measured/predicted ratio across probed ops (0 when
    /// nothing was probed). Ratios are taken against the floored
    /// prediction, matching [`AuditReport::violations`].
    pub fn worst_ratio(&self, floor: f64) -> f64 {
        self.rows
            .iter()
            .filter_map(|r| r.measured_rms.map(|m| m / r.predicted_rms.max(floor)))
            .fold(0.0, f64::max)
    }
}

/// Selects which operation indices to decrypt-probe: every output, plus
/// `checkpoints` more cipher ops spread evenly over the rest.
fn probe_set(prog: &CompiledProgram, checkpoints: usize) -> Vec<bool> {
    let n = prog.func.len();
    let mut probe = vec![false; n];
    for (_, v) in prog.func.outputs() {
        probe[v.index()] = true;
    }
    let candidates: Vec<usize> = (0..n)
        .filter(|&i| prog.types[i].is_cipher() && !probe[i])
        .collect();
    if candidates.is_empty() || checkpoints == 0 {
        return probe;
    }
    let k = checkpoints.min(candidates.len());
    for j in 0..k {
        // Evenly spaced picks, biased toward the middle of each stride.
        let idx = (j * candidates.len() + candidates.len() / 2) / k;
        probe[candidates[idx.min(candidates.len() - 1)]] = true;
    }
    probe
}

/// Runs `prog` encrypted with decrypt probes and returns the audit
/// report. See the module docs for the full flow.
///
/// # Errors
/// Returns [`ExecError`] on any execution failure (the probes themselves
/// cannot fail).
pub fn audit_encrypted(
    prog: &CompiledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    opts: &BackendOptions,
    audit: &AuditOptions,
) -> Result<AuditReport, ExecError> {
    let engine = ExecEngine::new(Arc::new(prog.clone()), opts)?;
    audit_on_engine(&engine, inputs, audit)
}

/// [`audit_encrypted`] over an already-built engine.
///
/// # Errors
/// Returns [`ExecError`] on any execution failure.
pub fn audit_on_engine(
    engine: &ExecEngine,
    inputs: &HashMap<String, Vec<f64>>,
    audit: &AuditOptions,
) -> Result<AuditReport, ExecError> {
    let prog = engine.prog().clone();
    let expected = simulate_ops(&prog, inputs, engine.degree());
    let probes = probe_set(&prog, audit.checkpoints);
    let is_output: Vec<bool> = {
        let mut v = vec![false; prog.func.len()];
        for (_, vid) in prog.func.outputs() {
            v[vid.index()] = true;
        }
        v
    };
    let probe = engine.probe();
    let mut rows: Vec<AuditRow> = Vec::new();

    let mut observer = |i: usize, value: &crate::exec::OpValue, predicted_rms: f64| {
        let Some(ct) = value.as_cipher() else {
            return Ok(());
        };
        let ty = prog.types[i];
        let measured_rms = if probes[i] {
            let m = probe.rms_error(ct, &expected[i].values);
            trace::mark_with("precision-probe", || {
                vec![
                    ("i", i.into()),
                    ("op", prog.func.ops()[i].mnemonic().into()),
                    ("predicted_rms", predicted_rms.into()),
                    ("measured_rms", m.into()),
                ]
            });
            Some(m)
        } else {
            None
        };
        rows.push(AuditRow {
            op: i,
            mnemonic: prog.func.ops()[i].mnemonic(),
            level: ty.level().unwrap_or(0),
            scale_bits: ty.scale().unwrap_or(0.0),
            predicted_rms,
            measured_rms,
            margin_bits: ty.scale().unwrap_or(0.0) - prog.cfg.waterline,
            is_output: is_output[i],
        });
        Ok(())
    };

    let run = execute_sequential_with(engine, inputs, Some(&mut observer), None)?;

    let mut reference = HashMap::new();
    for (name, v) in prog.func.outputs() {
        reference.insert(name.clone(), expected[v.index()].values.clone());
    }
    Ok(AuditReport {
        min_margin_bits: run.min_margin_bits,
        rows,
        outputs: run.outputs,
        reference,
        total_us: run.total_us,
    })
}

/// Audits one slot-batched run: executes the program once for every
/// tenant packed into a shared ciphertext (the engine must be built with
/// `batch_occupancy == tenants.len()`), decrypt-probing checkpoints and
/// outputs per tenant block, and returns one [`AuditReport`] per tenant.
///
/// Each tenant's measured RMS compares its *demultiplexed* window against
/// its own plaintext reference, so the verdict machinery
/// ([`AuditReport::violations`]) applies unchanged. Predictions come from
/// the shared run ledger, whose noise model bounds message magnitude by
/// the occupancy — packed predictions only grow, keeping the audit
/// one-sided-conservative exactly like the solo model.
///
/// # Errors
/// Returns [`ExecError`] on any execution failure.
pub fn audit_batched(
    engine: &ExecEngine,
    tenants: &[&HashMap<String, Vec<f64>>],
    audit: &AuditOptions,
) -> Result<Vec<AuditReport>, ExecError> {
    let prog = engine.prog().clone();
    let expected: Vec<_> = tenants
        .iter()
        .map(|inputs| simulate_ops(&prog, inputs, engine.degree()))
        .collect();
    let probes = probe_set(&prog, audit.checkpoints);
    let is_output: Vec<bool> = {
        let mut v = vec![false; prog.func.len()];
        for (_, vid) in prog.func.outputs() {
            v[vid.index()] = true;
        }
        v
    };
    let mut per_tenant_rows: Vec<Vec<AuditRow>> = vec![Vec::new(); tenants.len()];

    let mut observer = |i: usize, value: &crate::exec::OpValue, predicted_rms: f64| {
        if value.as_cipher().is_none() {
            return Ok(());
        }
        let ty = prog.types[i];
        let measured: Vec<Option<f64>> = if probes[i] {
            engine
                .demux_copies(value, i)
                .iter()
                .enumerate()
                .map(|(t, samples)| {
                    // Every clean copy in the block samples the same
                    // logical value; rms over all of them.
                    let exp = &expected[t][i].values;
                    let sq: f64 = samples
                        .iter()
                        .enumerate()
                        .map(|(k, s)| {
                            let e = s - exp[k % exp.len()];
                            e * e
                        })
                        .sum();
                    let m = (sq / samples.len() as f64).sqrt();
                    trace::mark_with("precision-probe", || {
                        vec![
                            ("i", i.into()),
                            ("op", prog.func.ops()[i].mnemonic().into()),
                            ("tenant", t.into()),
                            ("predicted_rms", predicted_rms.into()),
                            ("measured_rms", m.into()),
                        ]
                    });
                    Some(m)
                })
                .collect()
        } else {
            vec![None; tenants.len()]
        };
        for (t, m) in measured.into_iter().enumerate() {
            per_tenant_rows[t].push(AuditRow {
                op: i,
                mnemonic: prog.func.ops()[i].mnemonic(),
                level: ty.level().unwrap_or(0),
                scale_bits: ty.scale().unwrap_or(0.0),
                predicted_rms,
                measured_rms: m,
                margin_bits: ty.scale().unwrap_or(0.0) - prog.cfg.waterline,
                is_output: is_output[i],
            });
        }
        Ok(())
    };

    let run = crate::exec::execute_batched_with(engine, tenants, Some(&mut observer), None)?;

    let mut reports = Vec::with_capacity(tenants.len());
    for (t, rows) in per_tenant_rows.into_iter().enumerate() {
        let mut reference = HashMap::new();
        for (name, v) in prog.func.outputs() {
            reference.insert(name.clone(), expected[t][v.index()].values.clone());
        }
        reports.push(AuditReport {
            min_margin_bits: run.min_margin_bits,
            rows,
            outputs: run.tenant_outputs[t].clone(),
            reference,
            total_us: run.total_us,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_encrypted;
    use hecate_compiler::{compile, CompileOptions, Scheme};
    use hecate_ir::FunctionBuilder;

    fn motivating() -> CompiledProgram {
        let mut b = FunctionBuilder::new("motivating", 8);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let x2 = b.square(x);
        let y2 = b.square(y);
        let z = b.add(x2, y2);
        let z2 = b.mul(z, z);
        let z3 = b.mul(z2, z);
        b.output(z3);
        let mut opts = CompileOptions::with_waterline(25.0);
        opts.degree = Some(256);
        compile(&b.finish(), Scheme::Hecate, &opts).unwrap()
    }

    fn inputs() -> HashMap<String, Vec<f64>> {
        let mut m = HashMap::new();
        m.insert("x".into(), vec![0.5, -0.25, 0.75, 0.1, 0.0, 0.3, -0.6, 0.2]);
        m.insert("y".into(), vec![0.1, 0.6, -0.5, 0.4, 0.9, -0.2, 0.0, 0.8]);
        m
    }

    #[test]
    fn audit_probes_and_reports() {
        let prog = motivating();
        let audit = AuditOptions::default();
        let report = audit_encrypted(&prog, &inputs(), &BackendOptions::default(), &audit).unwrap();
        assert!(!report.rows.is_empty());
        // Every output row was probed.
        for row in report.rows.iter().filter(|r| r.is_output) {
            assert!(row.measured_rms.is_some(), "output op {} unprobed", row.op);
        }
        // Some intermediate row was probed too.
        assert!(
            report
                .rows
                .iter()
                .any(|r| !r.is_output && r.measured_rms.is_some()),
            "no intermediate checkpoint probed"
        );
        // A well-formed plan has non-negative margins and no violations.
        assert!(report.min_margin_bits >= 0.0);
        assert!(
            report.violations(&audit).is_empty(),
            "unexpected violations: {:?}",
            report.violations(&audit)
        );
    }

    #[test]
    fn audited_run_is_bit_identical_to_plain_run() {
        let prog = motivating();
        let plain = execute_encrypted(&prog, &inputs(), &BackendOptions::default()).unwrap();
        let audited = audit_encrypted(
            &prog,
            &inputs(),
            &BackendOptions::default(),
            &AuditOptions {
                checkpoints: 100,
                ..AuditOptions::default()
            },
        )
        .unwrap();
        for (name, vals) in &plain.outputs {
            let audited_vals = &audited.outputs[name];
            assert_eq!(vals.len(), audited_vals.len());
            for (a, b) in vals.iter().zip(audited_vals) {
                assert_eq!(a.to_bits(), b.to_bits(), "output '{name}' diverged");
            }
        }
    }

    #[test]
    fn batched_audit_passes_per_tenant() {
        let prog = motivating();
        let occupancy = 4usize;
        // width 8, no rotations → block 8, slots 32, degree 64; use a
        // comfortably larger ring.
        let engine = ExecEngine::new(
            Arc::new(prog),
            &BackendOptions {
                degree_override: Some(256),
                batch_occupancy: occupancy,
                ..BackendOptions::default()
            },
        )
        .unwrap();
        let base = inputs();
        let tenants: Vec<HashMap<String, Vec<f64>>> = (0..occupancy)
            .map(|t| {
                base.iter()
                    .map(|(k, v)| {
                        let mut rot = v.clone();
                        let by = t % rot.len();
                        rot.rotate_left(by);
                        (k.clone(), rot)
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&HashMap<String, Vec<f64>>> = tenants.iter().collect();
        let audit = AuditOptions::default();
        let reports = audit_batched(&engine, &refs, &audit).unwrap();
        assert_eq!(reports.len(), occupancy);
        for (t, report) in reports.iter().enumerate() {
            assert!(!report.rows.is_empty());
            for row in report.rows.iter().filter(|r| r.is_output) {
                assert!(
                    row.measured_rms.is_some(),
                    "tenant {t} output op {} unprobed",
                    row.op
                );
            }
            assert!(
                report.violations(&audit).is_empty(),
                "tenant {t} violations: {:?}",
                report.violations(&audit)
            );
            // Demuxed outputs really are this tenant's answer, not a
            // shared copy: compare against the tenant's own reference.
            for (name, reference) in &report.reference {
                let got = &report.outputs[name];
                assert!(crate::rms_error(got, reference) < 1e-2, "tenant {t} {name}");
            }
        }
        // Tenants received different answers (inputs were rotated).
        assert_ne!(reports[0].outputs["out0"], reports[1].outputs["out0"]);
    }

    #[test]
    fn under_waterlined_plan_is_flagged() {
        // EVA plans never downscale, so execution reads nothing from
        // cfg.waterline — tampering it changes only what the plan
        // *claims*, which is exactly the drift --audit exists to catch
        // (a stale or hand-edited plan).
        let mut b = FunctionBuilder::new("tampered", 8);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let x2 = b.square(x);
        let y2 = b.square(y);
        let s = b.add(x2, y2);
        b.output(s);
        let mut opts = CompileOptions::with_waterline(25.0);
        opts.degree = Some(256);
        let mut prog = compile(&b.finish(), Scheme::Eva, &opts).unwrap();
        prog.cfg.waterline += 64.0;
        let audit = AuditOptions::default();
        let report = audit_encrypted(&prog, &inputs(), &BackendOptions::default(), &audit).unwrap();
        assert!(report.min_margin_bits < 0.0);
        let violations = report.violations(&audit);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, AuditViolation::NegativeMargin { .. })),
            "tampered waterline not flagged: {violations:?}"
        );
    }
}
