//! Liveness analysis for memory planning.
//!
//! The paper's SEAL dialect "optimizes memory usage by analyzing the
//! liveness" — ciphertexts are multi-megabyte objects, so freeing each one
//! after its last use keeps the working set near the program's true width
//! rather than its length. The executor consults [`last_uses`] to drop
//! values eagerly; [`peak_live`] gives the static high-water mark.

use hecate_ir::Function;

/// For each value, the index of the last operation that uses it
/// (`usize::MAX` for outputs, which must survive to the end; the value's
/// own index if it is never used).
pub fn last_uses(func: &Function) -> Vec<usize> {
    let mut last: Vec<usize> = (0..func.len()).collect();
    for (i, op) in func.ops().iter().enumerate() {
        for v in op.operands() {
            last[v.index()] = i;
        }
    }
    for (_, v) in func.outputs() {
        last[v.index()] = usize::MAX;
    }
    last
}

/// The maximum number of simultaneously live values when each is freed
/// right after its last use.
pub fn peak_live(func: &Function) -> usize {
    let last = last_uses(func);
    let mut live = 0usize;
    let mut peak = 0;
    let mut dying_at: Vec<usize> = vec![0; func.len() + 1];
    for (v, &l) in last.iter().enumerate() {
        if l != usize::MAX && l < func.len() {
            dying_at[l] += 1;
        }
        let _ = v;
    }
    let outputs = func.outputs().len();
    for i in 0..func.len() {
        live += 1; // value i is born
        peak = peak.max(live);
        live -= dying_at[i];
    }
    peak.max(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::FunctionBuilder;

    #[test]
    fn last_use_positions() {
        let mut b = FunctionBuilder::new("l", 4);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let m = b.mul(x, y); // last use of x and y
        let s = b.add(m, m); // last use of m
        b.output(s);
        let f = b.finish();
        let last = last_uses(&f);
        assert_eq!(last[x.index()], m.index());
        assert_eq!(last[y.index()], m.index());
        assert_eq!(last[m.index()], s.index());
        assert_eq!(last[s.index()], usize::MAX);
    }

    #[test]
    fn peak_live_chain_is_constant() {
        // A long dependency chain should keep the peak small.
        let mut b = FunctionBuilder::new("chain", 4);
        let mut v = b.input_cipher("x");
        for _ in 0..50 {
            v = b.add(v, v);
        }
        b.output(v);
        let f = b.finish();
        assert!(peak_live(&f) <= 3, "got {}", peak_live(&f));
    }

    #[test]
    fn peak_live_wide_program_counts_width() {
        let mut b = FunctionBuilder::new("wide", 4);
        let inputs: Vec<_> = (0..10).map(|i| b.input_cipher(format!("x{i}"))).collect();
        let mut acc = inputs[0];
        for &v in &inputs[1..] {
            acc = b.add(acc, v);
        }
        b.output(acc);
        let f = b.finish();
        let p = peak_live(&f);
        assert!(p >= 10, "all inputs live at once: {p}");
    }
}
