//! End-to-end tests: compile → execute encrypted → compare against the
//! plaintext reference, across schemes and waterlines.

use hecate_backend::exec::{execute_encrypted, BackendOptions};
use hecate_backend::{max_rms_error, rms_error, simulate};
use hecate_compiler::{compile, CompileOptions, Scheme};
use hecate_ir::interp::interpret;
use hecate_ir::{Function, FunctionBuilder};
use std::collections::HashMap;

fn motivating(vec: usize) -> Function {
    let mut b = FunctionBuilder::new("motivating", vec);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let x2 = b.square(x);
    let y2 = b.square(y);
    let z = b.add(x2, y2);
    let z2 = b.mul(z, z);
    let z3 = b.mul(z2, z);
    b.output(z3);
    b.finish()
}

fn inputs(vec: usize) -> HashMap<String, Vec<f64>> {
    let mut m = HashMap::new();
    m.insert(
        "x".to_string(),
        (0..vec).map(|i| 0.1 + (i % 5) as f64 * 0.2).collect(),
    );
    m.insert(
        "y".to_string(),
        (0..vec).map(|i| 0.8 - (i % 3) as f64 * 0.3).collect(),
    );
    m
}

fn opts(w: f64, degree: usize) -> CompileOptions {
    let mut o = CompileOptions::with_waterline(w);
    o.degree = Some(degree);
    o
}

#[test]
fn all_schemes_compute_the_same_function() {
    let vec = 16;
    let func = motivating(vec);
    let ins = inputs(vec);
    let reference = interpret(&func, &ins).unwrap();
    for scheme in Scheme::ALL {
        let prog = compile(&func, scheme, &opts(26.0, 256)).unwrap();
        let run = execute_encrypted(&prog, &ins, &BackendOptions::default()).unwrap();
        let err = rms_error(&run.outputs["out0"], &reference["out0"]);
        assert!(
            err < 2f64.powi(-8),
            "{scheme}: RMS error {err} exceeds 2^-8"
        );
        assert!(run.total_us > 0.0);
        assert_eq!(run.chain_len, prog.params.chain_len);
    }
}

#[test]
fn rotation_heavy_program_roundtrips() {
    let vec = 16;
    let mut b = FunctionBuilder::new("rot", vec);
    let x = b.input_cipher("x");
    let s = b.rotate_sum(x, 8);
    let c = b.splat(0.125);
    let avg = b.mul(s, c);
    b.output(avg);
    let func = b.finish();
    let mut ins = HashMap::new();
    ins.insert("x".to_string(), (0..vec).map(|i| i as f64 * 0.1).collect());
    let reference = interpret(&func, &ins).unwrap();
    let prog = compile(&func, Scheme::Hecate, &opts(25.0, 256)).unwrap();
    let run = execute_encrypted(&prog, &ins, &BackendOptions::default()).unwrap();
    let err = rms_error(&run.outputs["out0"], &reference["out0"]);
    assert!(err < 2f64.powi(-8), "RMS error {err}");
}

#[test]
fn replication_preserves_rotation_semantics() {
    // vec_size 8 on a 128-slot ring: windows must rotate independently.
    let vec = 8;
    let mut b = FunctionBuilder::new("rep", vec);
    let x = b.input_cipher("x");
    let r = b.rotate(x, 3);
    b.output(r);
    let func = b.finish();
    let mut ins = HashMap::new();
    ins.insert("x".to_string(), (0..vec).map(|i| i as f64).collect());
    let reference = interpret(&func, &ins).unwrap();
    let prog = compile(&func, Scheme::Eva, &opts(25.0, 256)).unwrap();
    let run = execute_encrypted(&prog, &ins, &BackendOptions::default()).unwrap();
    for k in 0..vec {
        assert!(
            (run.outputs["out0"][k] - reference["out0"][k]).abs() < 1e-2,
            "slot {k}: {} vs {}",
            run.outputs["out0"][k],
            reference["out0"][k]
        );
    }
}

#[test]
fn smaller_waterline_gives_larger_error() {
    let vec = 8;
    let func = motivating(vec);
    let ins = inputs(vec);
    let reference = interpret(&func, &ins).unwrap();
    let mut errors = Vec::new();
    for w in [18.0, 30.0] {
        let prog = compile(&func, Scheme::Eva, &opts(w, 256)).unwrap();
        let run = execute_encrypted(&prog, &ins, &BackendOptions::default()).unwrap();
        errors.push(rms_error(&run.outputs["out0"], &reference["out0"]));
    }
    assert!(
        errors[0] > errors[1],
        "error at waterline 18 ({}) should exceed waterline 30 ({})",
        errors[0],
        errors[1]
    );
}

#[test]
fn noise_simulation_tracks_encrypted_error() {
    let vec = 8;
    let func = motivating(vec);
    let ins = inputs(vec);
    let reference = interpret(&func, &ins).unwrap();
    let prog = compile(&func, Scheme::Hecate, &opts(24.0, 256)).unwrap();
    let run = execute_encrypted(&prog, &ins, &BackendOptions::default()).unwrap();
    let measured = rms_error(&run.outputs["out0"], &reference["out0"]);
    let sim = simulate(&prog, &ins, 256);
    let estimated = max_rms_error(&sim);
    // The simulator's outputs are the exact reference.
    assert_eq!(sim.outputs["out0"], reference["out0"]);
    // Order-of-magnitude agreement is all the sweep filter needs.
    assert!(
        estimated > measured / 300.0 && estimated < measured * 300.0 + 1e-12,
        "estimated {estimated} vs measured {measured}"
    );
}

#[test]
fn deep_chain_and_peak_live_reporting() {
    let vec = 8;
    let mut b = FunctionBuilder::new("deep", vec);
    let x = b.input_cipher("x");
    let mut cur = x;
    for _ in 0..4 {
        cur = b.square(cur);
    }
    b.output(cur);
    let func = b.finish();
    let mut ins = HashMap::new();
    ins.insert("x".to_string(), vec![1.05; vec]);
    let reference = interpret(&func, &ins).unwrap();
    let prog = compile(&func, Scheme::Pars, &opts(24.0, 256)).unwrap();
    let run = execute_encrypted(&prog, &ins, &BackendOptions::default()).unwrap();
    let err = rms_error(&run.outputs["out0"], &reference["out0"]);
    assert!(err < 2f64.powi(-6), "deep chain error {err}");
    assert!(run.peak_live >= 1 && run.peak_live < 8);
}

#[test]
fn missing_input_is_reported() {
    let func = motivating(8);
    let prog = compile(&func, Scheme::Eva, &opts(25.0, 256)).unwrap();
    let err = execute_encrypted(&prog, &HashMap::new(), &BackendOptions::default());
    assert!(matches!(
        err,
        Err(hecate_backend::ExecError::MissingInput { .. })
    ));
}
