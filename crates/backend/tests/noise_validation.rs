//! Validates the first-order noise model against measured encrypted
//! error across **all 8 paper benchmarks** (SF, HCD, MLP, LeNet,
//! LR E2/E3, PR E2/E3).
//!
//! The model is deliberately conservative: at accumulation-heavy ops it
//! can *over*-predict the decoded-domain RMS error by several orders of
//! magnitude, because it tracks worst-case variance growth rather than
//! the cancellation real data exhibits. What it must never do is
//! *under*-predict badly — a measured error far above prediction means a
//! decryption the compiler promised was accurate is garbage. So the
//! contract asserted here is the one-sided safety bound the audit gate
//! enforces: at every probed operation,
//!
//! ```text
//! measured_rms <= 10 x max(predicted_rms, floor)
//! ```
//!
//! i.e. the estimate is within one order of magnitude of the measured
//! error on the side that matters. Empirically the worst ratio across
//! the suite is ~5x (LR E2), so the bound has real headroom without
//! being vacuous.

#![forbid(unsafe_code)]

use hecate_apps::{all_benchmarks, Preset};
use hecate_backend::exec::BackendOptions;
use hecate_backend::{audit_encrypted, AuditOptions};
use hecate_compiler::{compile, CompileOptions, Scheme};

fn backend(degree: usize) -> BackendOptions {
    BackendOptions {
        degree_override: Some(degree),
        ..BackendOptions::default()
    }
}

#[test]
fn noise_estimate_bounds_measured_error_on_all_benchmarks() {
    let audit = AuditOptions::default(); // factor 10, floor 1e-7
    let benches = all_benchmarks(Preset::Small);
    assert_eq!(benches.len(), 8, "the paper's full benchmark suite");
    for bench in &benches {
        let degree = (2 * bench.func.vec_size).max(512);
        let mut opts = CompileOptions::with_waterline(24.0);
        opts.degree = Some(degree);
        let prog = compile(&bench.func, Scheme::Pars, &opts)
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", bench.name));
        let report = audit_encrypted(&prog, &bench.inputs, &backend(degree), &audit)
            .unwrap_or_else(|e| panic!("{}: audited run failed: {e}", bench.name));
        // Every probed op (all outputs + 4 checkpoints) satisfies the
        // one-sided order-of-magnitude bound, and the plan's scales all
        // clear the waterline.
        let violations = report.violations(&audit);
        assert!(
            violations.is_empty(),
            "{}: audit violations: {}",
            bench.name,
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert!(
            report.min_margin_bits >= 0.0,
            "{}: negative waterline margin {:.2} bits",
            bench.name,
            report.min_margin_bits
        );
        let probed = report.rows.iter().filter(|r| r.measured_rms.is_some());
        assert!(probed.count() > 0, "{}: audit probed nothing", bench.name);
        let worst = report.worst_ratio(audit.floor);
        assert!(
            worst <= audit.factor,
            "{}: worst measured/predicted ratio {worst:.2} exceeds {}",
            bench.name,
            audit.factor
        );
    }
}

#[test]
fn audit_flags_under_waterlined_plan_via_public_api() {
    // Same drift the unit test covers, but through the crate's public
    // re-exports, on a real benchmark: raise the claimed waterline above
    // the plan's actual scales and the audit must report a negative
    // margin. EVA plans read nothing from cfg.waterline at execution
    // time, so the tamper changes only the claim being audited.
    let bench = &all_benchmarks(Preset::Small)[0]; // SF
    let degree = (2 * bench.func.vec_size).max(512);
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(degree);
    let mut prog = compile(&bench.func, Scheme::Eva, &opts).expect("SF compiles");
    prog.cfg.waterline += 64.0;
    let audit = AuditOptions::default();
    let report =
        audit_encrypted(&prog, &bench.inputs, &backend(degree), &audit).expect("tampered run");
    assert!(report.min_margin_bits < 0.0);
    assert!(
        !report.violations(&audit).is_empty(),
        "under-waterlined plan passed the audit"
    );
}
