//! Targeted backend tests: key requirements, parameter construction,
//! memory accounting, and the noise simulator's trends.

use hecate_backend::exec::{build_params, execute_encrypted, key_requirements, BackendOptions};
use hecate_backend::{max_rms_error, simulate};
use hecate_compiler::{compile, CompileOptions, Scheme};
use hecate_ir::FunctionBuilder;
use std::collections::HashMap;

fn opts(w: f64) -> CompileOptions {
    let mut o = CompileOptions::with_waterline(w);
    o.degree = Some(256);
    o
}

#[test]
fn key_requirements_cover_exactly_whats_used() {
    // One ct×ct mul at level 0 and rotations at two levels.
    let mut b = FunctionBuilder::new("k", 16);
    let x = b.input_cipher("x");
    let r = b.rotate(x, 3);
    let m = b.mul(x, r);
    let m2 = b.mul(m, m);
    let r2 = b.rotate(m2, 5);
    b.output(r2);
    let func = b.finish();
    let prog = compile(&func, Scheme::Eva, &opts(20.0)).unwrap();
    let params = build_params(
        &prog,
        &BackendOptions {
            degree_override: Some(256),
            seed: 1,
            ..BackendOptions::default()
        },
    )
    .unwrap();
    let (relin, rot) = key_requirements(&prog, params.slots(), params.basis().chain_len());
    assert!(!relin.is_empty(), "ct×ct multiplications need relin keys");
    let steps: Vec<usize> = rot.iter().map(|(s, _)| *s).collect();
    assert!(steps.contains(&3) && steps.contains(&5), "{steps:?}");
    // No spurious keys: only the two steps used.
    assert!(steps.iter().all(|s| *s == 3 || *s == 5));
}

#[test]
fn build_params_matches_compiled_chain() {
    let mut b = FunctionBuilder::new("p", 8);
    let x = b.input_cipher("x");
    let m = b.mul(x, x);
    let m2 = b.mul(m, m);
    b.output(m2);
    let func = b.finish();
    let prog = compile(&func, Scheme::Hecate, &opts(24.0)).unwrap();
    let bo = BackendOptions {
        degree_override: Some(512),
        seed: 2,
        ..BackendOptions::default()
    };
    let params = build_params(&prog, &bo).unwrap();
    assert_eq!(params.degree(), 512);
    assert_eq!(params.basis().chain_len(), prog.params.chain_len);
}

#[test]
fn peak_bytes_tracks_live_set() {
    // A wide fan-in keeps many ciphertexts alive; a chain keeps few.
    let wide = {
        let mut b = FunctionBuilder::new("wide", 8);
        let xs: Vec<_> = (0..8).map(|i| b.input_cipher(format!("x{i}"))).collect();
        let mut acc = xs[0];
        for &v in &xs[1..] {
            acc = b.add(acc, v);
        }
        b.output(acc);
        b.finish()
    };
    let chain = {
        let mut b = FunctionBuilder::new("chain", 8);
        let x = b.input_cipher("x0");
        let mut acc = x;
        for _ in 0..7 {
            acc = b.add(acc, acc);
        }
        b.output(acc);
        b.finish()
    };
    let mut inputs = HashMap::new();
    for i in 0..8 {
        inputs.insert(format!("x{i}"), vec![0.5; 8]);
    }
    let bo = BackendOptions {
        degree_override: Some(256),
        seed: 3,
        ..BackendOptions::default()
    };
    let o = opts(24.0);
    let run_wide =
        execute_encrypted(&compile(&wide, Scheme::Eva, &o).unwrap(), &inputs, &bo).unwrap();
    let run_chain =
        execute_encrypted(&compile(&chain, Scheme::Eva, &o).unwrap(), &inputs, &bo).unwrap();
    assert!(run_wide.peak_live > run_chain.peak_live);
    assert!(run_wide.peak_bytes > run_chain.peak_bytes);
    // Sanity: bytes ≈ live × 2 polys × prefix × degree × 8.
    assert!(run_wide.peak_bytes >= run_wide.peak_live * 2 * 256 * 8);
}

#[test]
fn noise_simulation_grows_with_depth() {
    let mut prev = 0.0;
    for depth in [1usize, 3, 5] {
        let mut b = FunctionBuilder::new("d", 8);
        let x = b.input_cipher("x");
        let mut acc = x;
        for _ in 0..depth {
            acc = b.square(acc);
        }
        b.output(acc);
        let func = b.finish();
        let mut o = CompileOptions::with_waterline(30.0);
        o.degree = Some(256);
        let prog = compile(&func, Scheme::Eva, &o).unwrap();
        // Keep the message at exactly 1.0 so repeated squaring leaves the
        // signal fixed and depth is the only variable (with a shrinking
        // message the error legitimately shrinks too).
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![1.0; 8]);
        let rmse = max_rms_error(&simulate(&prog, &inputs, 256));
        assert!(rmse > prev, "depth {depth}: {rmse} should exceed {prev}");
        prev = rmse;
    }
}

#[test]
fn overlong_input_is_a_typed_error() {
    let mut b = FunctionBuilder::new("long", 8);
    let x = b.input_cipher("x");
    let m = b.mul(x, x);
    b.output(m);
    let func = b.finish();
    let prog = compile(&func, Scheme::Eva, &opts(20.0)).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert("x".to_string(), vec![0.1; 9]); // width is 8
    let err = execute_encrypted(
        &prog,
        &inputs,
        &BackendOptions {
            degree_override: Some(256),
            seed: 4,
            ..BackendOptions::default()
        },
    );
    match err {
        Err(hecate_backend::ExecError::InputTooLong {
            name,
            len,
            vec_size,
        }) => {
            assert_eq!(name, "x");
            assert_eq!(len, 9);
            assert_eq!(vec_size, 8);
        }
        other => panic!("expected InputTooLong, got {other:?}"),
    }
}

/// A rotation-heavy function: `fan` distinct rotations of the same input,
/// summed. This is the shape hoisting accelerates.
fn rotation_fan_func(fan: usize) -> hecate_ir::Function {
    let mut b = FunctionBuilder::new("fan", 16);
    let x = b.input_cipher("x");
    let x2 = b.mul(x, x); // descend a level so rotations run mid-chain
    let mut acc = x2;
    for step in 1..=fan {
        let r = b.rotate(x2, step);
        acc = b.add(acc, r);
    }
    b.output(acc);
    b.finish()
}

#[test]
fn rotation_fanout_counts_distinct_canonical_steps() {
    let func = {
        let mut b = FunctionBuilder::new("f", 16);
        let x = b.input_cipher("x");
        let r1 = b.rotate(x, 3);
        let r2 = b.rotate(x, 5);
        let r3 = b.rotate(x, 3 + 16); // wraps to 3 on a 16-slot ring: no new key
        let r4 = b.rotate(x, 16); // identity on a 16-slot ring
        let s1 = b.add(r1, r2);
        let s2 = b.add(r3, r4);
        let s = b.add(s1, s2);
        b.output(s);
        b.finish()
    };
    let prog = compile(&func, Scheme::Eva, &opts(20.0)).unwrap();
    let fanout = hecate_backend::rotation_fanout(&prog, 16);
    // The input value (index of x's op) should have fanout 2: steps {3, 5}.
    let max = fanout.iter().copied().max().unwrap();
    assert_eq!(max, 2, "{fanout:?}");
}

#[test]
fn hoisted_execution_is_bit_identical_to_unhoisted() {
    let func = rotation_fan_func(4);
    let prog = compile(&func, Scheme::Eva, &opts(24.0)).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(
        "x".to_string(),
        (0..16).map(|i| (i as f64) * 0.05 - 0.3).collect(),
    );
    let base = BackendOptions {
        degree_override: Some(256),
        seed: 7,
        hoist_rotations: false,
        ..BackendOptions::default()
    };
    let reference = execute_encrypted(&prog, &inputs, &base).unwrap();
    for (hoist, jobs) in [(true, 1), (true, 2), (true, 4), (false, 2)] {
        let run = execute_encrypted(
            &prog,
            &inputs,
            &BackendOptions {
                hoist_rotations: hoist,
                kernel_jobs: jobs,
                ..base.clone()
            },
        )
        .unwrap();
        for (name, out) in &reference.outputs {
            let got = &run.outputs[name];
            assert_eq!(out.len(), got.len());
            for (a, b) in out.iter().zip(got) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "hoist={hoist} jobs={jobs}: outputs diverged"
                );
            }
        }
    }
}

#[test]
fn vector_width_must_fit_slots() {
    let mut b = FunctionBuilder::new("big", 1024);
    let x = b.input_cipher("x");
    let m = b.mul(x, x);
    b.output(m);
    let func = b.finish();
    let prog = compile(&func, Scheme::Eva, &opts(20.0)).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert("x".to_string(), vec![0.1; 1024]);
    // 256-degree ring has 128 slots < 1024.
    let err = execute_encrypted(
        &prog,
        &inputs,
        &BackendOptions {
            degree_override: Some(256),
            seed: 4,
            ..BackendOptions::default()
        },
    );
    assert!(matches!(
        err,
        Err(hecate_backend::ExecError::BadVectorWidth { .. })
    ));
}
