//! Fault-injection suite: every [`FaultPlan`] variant must be caught by a
//! guard — a structured `ExecError`, never a panic and never a silently
//! wrong plaintext.

use hecate_backend::exec::{execute_encrypted, BackendOptions, ExecError, GuardOptions};
use hecate_backend::{rms_error, FaultPlan};
use hecate_compiler::{compile, CompileOptions, CompiledProgram, Scheme};
use hecate_ir::interp::interpret;
use hecate_ir::{Function, FunctionBuilder, Op};
use std::collections::HashMap;

fn motivating(vec: usize) -> Function {
    let mut b = FunctionBuilder::new("motivating", vec);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let x2 = b.square(x);
    let y2 = b.square(y);
    let z = b.add(x2, y2);
    let z2 = b.mul(z, z);
    let z3 = b.mul(z2, z);
    b.output(z3);
    b.finish()
}

fn inputs(vec: usize) -> HashMap<String, Vec<f64>> {
    let mut m = HashMap::new();
    m.insert(
        "x".to_string(),
        (0..vec).map(|i| 0.1 + (i % 5) as f64 * 0.2).collect(),
    );
    m.insert(
        "y".to_string(),
        (0..vec).map(|i| 0.8 - (i % 3) as f64 * 0.3).collect(),
    );
    m
}

fn compiled() -> CompiledProgram {
    compiled_with(Scheme::Hecate)
}

/// The EVA baseline is used for rescale-targeting faults: PARS replaces
/// rescales with downscales, while EVA's reactive policy keeps them.
fn compiled_with(scheme: Scheme) -> CompiledProgram {
    let mut o = CompileOptions::with_waterline(26.0);
    o.degree = Some(256);
    compile(&motivating(16), scheme, &o).unwrap()
}

fn strict_with(fault: FaultPlan) -> BackendOptions {
    BackendOptions {
        guard: GuardOptions::strict(0.5),
        fault: Some(fault),
        ..BackendOptions::default()
    }
}

/// Index of the first op matching a predicate.
fn find(prog: &CompiledProgram, pred: impl Fn(&Op) -> bool) -> usize {
    prog.func
        .ops()
        .iter()
        .position(pred)
        .expect("program contains the op")
}

#[test]
fn clean_run_passes_under_strict_guards() {
    let prog = compiled();
    let ins = inputs(16);
    let run = execute_encrypted(
        &prog,
        &ins,
        &BackendOptions {
            guard: GuardOptions::strict(0.5),
            ..BackendOptions::default()
        },
    )
    .unwrap();
    let reference = interpret(&motivating(16), &ins).unwrap();
    assert!(rms_error(&run.outputs["out0"], &reference["out0"]) < 2f64.powi(-8));
}

#[test]
fn corrupt_limb_caught_by_representation_scan() {
    let prog = compiled();
    let at = find(&prog, |op| matches!(op, Op::Mul(..)));
    let err = execute_encrypted(
        &prog,
        &inputs(16),
        &strict_with(FaultPlan::CorruptLimb { at, limb: 0 }),
    )
    .unwrap_err();
    match err {
        ExecError::Guard { at: got, detail } => {
            assert_eq!(got, at);
            assert!(detail.contains("out of range"), "{detail}");
        }
        other => panic!("expected a guard error, got {other}"),
    }
}

#[test]
fn perturbed_scale_caught_by_metadata_check() {
    let prog = compiled();
    let at = find(&prog, |op| matches!(op, Op::Mul(..)));
    let err = execute_encrypted(
        &prog,
        &inputs(16),
        &strict_with(FaultPlan::PerturbScale {
            at,
            delta_bits: 0.75,
        }),
    )
    .unwrap_err();
    match err {
        ExecError::Guard { at: got, detail } => {
            assert_eq!(got, at);
            assert!(detail.contains("scale"), "{detail}");
        }
        other => panic!("expected a guard error, got {other}"),
    }
}

#[test]
fn dropped_rescale_caught_by_metadata_check() {
    let prog = compiled_with(Scheme::Eva);
    let at = find(&prog, |op| matches!(op, Op::Rescale(_)));
    let err = execute_encrypted(
        &prog,
        &inputs(16),
        &strict_with(FaultPlan::DropRescale { at }),
    )
    .unwrap_err();
    match err {
        ExecError::Guard { at: got, .. } => assert_eq!(got, at),
        other => panic!("expected a guard error, got {other}"),
    }
}

#[test]
fn skipped_relinearization_is_a_clean_missing_key_error() {
    let prog = compiled();
    let err =
        execute_encrypted(&prog, &inputs(16), &strict_with(FaultPlan::SkipRelin)).unwrap_err();
    match err {
        ExecError::Eval { source, .. } => {
            assert!(source.to_string().contains("key"), "{source}");
        }
        other => panic!("expected an eval error, got {other}"),
    }
}

#[test]
fn exhausted_noise_budget_reported_before_decryption() {
    let prog = compiled();
    let at = find(&prog, |op| matches!(op, Op::Mul(..)));
    let err = execute_encrypted(
        &prog,
        &inputs(16),
        &strict_with(FaultPlan::ExhaustNoise { at }),
    )
    .unwrap_err();
    match err {
        ExecError::BudgetExhausted { at: got, deficit } => {
            assert_eq!(got, at);
            assert!(deficit > 0.0, "deficit {deficit}");
        }
        other => panic!("expected budget exhaustion, got {other}"),
    }
}

#[test]
fn exhausted_noise_really_would_corrupt_the_output() {
    // The monitor is load-bearing: with it off (and metadata checks unable
    // to see payload noise), the same fault reaches decryption and the
    // output is garbage — exactly what BudgetExhausted prevents.
    let prog = compiled();
    let at = find(&prog, |op| matches!(op, Op::Mul(..)));
    let ins = inputs(16);
    let run = execute_encrypted(
        &prog,
        &ins,
        &BackendOptions {
            fault: Some(FaultPlan::ExhaustNoise { at }),
            ..BackendOptions::default()
        },
    )
    .unwrap();
    let reference = interpret(&motivating(16), &ins).unwrap();
    assert!(
        rms_error(&run.outputs["out0"], &reference["out0"]) > 2f64.powi(-4),
        "injected noise should visibly corrupt the output"
    );
}

#[test]
fn every_fault_variant_is_detected_never_silent() {
    let prog = compiled_with(Scheme::Eva);
    let mul = find(&prog, |op| matches!(op, Op::Mul(..)));
    let rescale = find(&prog, |op| matches!(op, Op::Rescale(_)));
    let ins = inputs(16);
    let reference = interpret(&motivating(16), &ins).unwrap();
    let faults = [
        FaultPlan::CorruptLimb { at: mul, limb: 1 },
        FaultPlan::PerturbScale {
            at: mul,
            delta_bits: -1.5,
        },
        FaultPlan::DropRescale { at: rescale },
        FaultPlan::SkipRelin,
        FaultPlan::ExhaustNoise { at: mul },
    ];
    for fault in faults {
        match execute_encrypted(&prog, &ins, &strict_with(fault.clone())) {
            Err(_) => {} // structured error: detected.
            Ok(run) => {
                // If a fault somehow slips through every guard, the result
                // must still be correct — never silently wrong.
                let err = rms_error(&run.outputs["out0"], &reference["out0"]);
                assert!(
                    err < 2f64.powi(-8),
                    "{fault:?} silently corrupted the output"
                );
            }
        }
    }
}
