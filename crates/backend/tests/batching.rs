//! Packed (slot-batched) execution against solo execution.
//!
//! A packed engine serves several tenants from one ciphertext. Bit-exact
//! agreement with solo runs is *not* possible at occupancy ≥ 2: CKKS
//! encoding is a global FFT over all slots, so packing different tenants
//! changes the rounding noise in every slot. What batching guarantees —
//! and what these tests pin down — is that every tenant's demultiplexed
//! result approximates the same plaintext reference within the noise
//! tolerance the solo path itself meets, across every benchmark workload,
//! and that packed execution is fully deterministic (two identical
//! batched runs agree to the bit).

use hecate_apps::{all_benchmarks, Preset};
use hecate_backend::exec::{
    execute_batched_with, execute_sequential, physical_step, BackendOptions, ExecEngine, ExecError,
};
use hecate_backend::rms_error;
use hecate_compiler::{compile, CompileOptions, Scheme};
use hecate_ir::interp::interpret;
use hecate_ir::{packed_shift, FunctionBuilder};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-tenant inputs derived from a benchmark's bindings: tenant `t`
/// rotates every vector by `t`, so tenants are distinct but keep the same
/// magnitude profile.
fn tenant_inputs(base: &HashMap<String, Vec<f64>>, t: usize) -> HashMap<String, Vec<f64>> {
    base.iter()
        .map(|(k, v)| {
            let mut rot = v.clone();
            if !rot.is_empty() {
                let by = t % rot.len();
                rot.rotate_left(by);
            }
            (k.clone(), rot)
        })
        .collect()
}

/// Smallest degree at which `occupancy` blocks fit the plan's footprint
/// (block must be a power of two ≥ the footprint and a multiple of the
/// vector width, slots = occupancy * block, degree = 2 * slots).
fn batch_degree(width: usize, block_slots: usize, occupancy: usize) -> usize {
    let block = block_slots.next_power_of_two().max(width);
    2 * occupancy * block
}

/// Compiles `bench`, runs it packed at `occupancy`, and checks every
/// tenant's demultiplexed outputs against a solo run at the same degree
/// and the plaintext reference.
fn check_benchmark(bench: &hecate_apps::Benchmark, occupancy: usize) {
    let mut copts = CompileOptions::with_waterline(24.0);
    copts.degree = Some(512);
    let prog = compile(&bench.func, Scheme::Pars, &copts)
        .unwrap_or_else(|e| panic!("{} failed to compile: {e}", bench.name));
    let degree = batch_degree(prog.func.vec_size, prog.footprint.block_slots(), occupancy);
    let prog = Arc::new(prog);

    let tenants: Vec<HashMap<String, Vec<f64>>> = (0..occupancy)
        .map(|t| tenant_inputs(&bench.inputs, t))
        .collect();

    // Solo engine at the same degree: the per-tenant reference.
    let solo = ExecEngine::new(
        prog.clone(),
        &BackendOptions {
            degree_override: Some(degree),
            ..BackendOptions::default()
        },
    )
    .unwrap();
    // Packed engine serving every tenant at once.
    let packed = ExecEngine::new(
        prog.clone(),
        &BackendOptions {
            degree_override: Some(degree),
            batch_occupancy: occupancy,
            ..BackendOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{}: packed engine: {e}", bench.name));
    assert_eq!(packed.occupancy(), occupancy);

    let refs: Vec<&HashMap<String, Vec<f64>>> = tenants.iter().collect();
    let batch = execute_batched_with(&packed, &refs, None, None)
        .unwrap_or_else(|e| panic!("{}: batched run: {e}", bench.name));
    assert_eq!(batch.occupancy, occupancy);
    assert_eq!(batch.tenant_outputs.len(), occupancy);

    // One solo reference run calibrates the noise regime; each tenant's
    // packed result must sit in it, both against the plaintext truth and
    // against its own solo run (tenant 0 only, to keep the test fast).
    let solo_run = execute_sequential(&solo, &tenants[0]).unwrap();
    let truth0 = interpret(&prog.func, &tenants[0]).unwrap();
    let solo_vs_truth = truth0
        .iter()
        .map(|(name, t)| rms_error(&solo_run.outputs[name], t))
        .fold(0.0f64, f64::max);
    let bound = (solo_vs_truth * 64.0).max(2f64.powi(-8));
    for (t, inputs) in tenants.iter().enumerate() {
        let truth = interpret(&prog.func, inputs).unwrap();
        for (name, got) in &batch.tenant_outputs[t] {
            let vs_truth = rms_error(got, &truth[name]);
            assert!(
                vs_truth < bound,
                "{} tenant {t} output {name}: packed rms {vs_truth} vs solo rms {solo_vs_truth}",
                bench.name
            );
        }
    }
    for (name, got) in &batch.tenant_outputs[0] {
        let vs_solo = rms_error(got, &solo_run.outputs[name]);
        assert!(
            vs_solo < bound,
            "{} output {name}: packed-vs-solo rms {vs_solo}",
            bench.name
        );
    }
}

#[test]
fn image_benchmarks_demux_to_the_solo_answer() {
    // The two rotation-heavy image pipelines (guard bands in both
    // directions) as the always-on check; the full 8-benchmark soak below
    // is CI's batching job.
    for bench in all_benchmarks(Preset::Small)
        .iter()
        .filter(|b| b.name == "SF" || b.name == "HCD")
    {
        check_benchmark(bench, 2);
    }
}

#[test]
#[ignore = "batching soak: run explicitly (CI batching job)"]
fn every_benchmark_demuxes_to_the_solo_answer() {
    for bench in &all_benchmarks(Preset::Small) {
        check_benchmark(bench, 2);
    }
}

#[test]
fn batched_runs_are_deterministic() {
    let bench = all_benchmarks(Preset::Small)
        .into_iter()
        .find(|b| b.name == "SF")
        .unwrap();
    let mut copts = CompileOptions::with_waterline(24.0);
    copts.degree = Some(512);
    let prog = Arc::new(compile(&bench.func, Scheme::Pars, &copts).unwrap());
    let occupancy = 4usize;
    let degree = batch_degree(prog.func.vec_size, prog.footprint.block_slots(), occupancy);
    let engine = ExecEngine::new(
        prog,
        &BackendOptions {
            degree_override: Some(degree),
            batch_occupancy: occupancy,
            ..BackendOptions::default()
        },
    )
    .unwrap();
    let tenants: Vec<HashMap<String, Vec<f64>>> = (0..occupancy)
        .map(|t| tenant_inputs(&bench.inputs, t))
        .collect();
    let refs: Vec<&HashMap<String, Vec<f64>>> = tenants.iter().collect();
    let a = execute_batched_with(&engine, &refs, None, None).unwrap();
    let b = execute_batched_with(&engine, &refs, None, None).unwrap();
    for t in 0..occupancy {
        for (name, va) in &a.tenant_outputs[t] {
            let vb = &b.tenant_outputs[t][name];
            assert_eq!(va.len(), vb.len());
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "tenant {t} output {name}");
            }
        }
    }
}

#[test]
fn infeasible_occupancy_is_a_typed_error() {
    // A rotation-heavy function at a degree whose blocks cannot hold the
    // guard bands must be rejected at engine build, not miscomputed.
    let mut b = FunctionBuilder::new("wide", 16);
    let x = b.input_cipher("x");
    let r = b.rotate(x, 1);
    let s = b.add(x, r);
    b.output(s);
    let mut copts = CompileOptions::with_waterline(24.0);
    copts.degree = Some(256);
    let prog = Arc::new(compile(&b.finish(), Scheme::Pars, &copts).unwrap());
    // footprint: width 16, fwd 1 → block needs ≥ 17 slots, but at degree
    // 64 (32 slots) occupancy 2 leaves 16-slot blocks.
    let err = ExecEngine::new(
        prog,
        &BackendOptions {
            degree_override: Some(64),
            batch_occupancy: 2,
            ..BackendOptions::default()
        },
    )
    .err()
    .expect("must not build");
    match err {
        ExecError::BatchUnsupported {
            occupancy,
            block,
            needed,
        } => {
            assert_eq!(occupancy, 2);
            assert_eq!(block, 16);
            assert_eq!(needed, 17);
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn physical_step_agrees_with_packed_shift() {
    let (w, slots) = (16usize, 128usize);
    for step in 0..3 * w {
        let solo = physical_step(step, w, slots, 1);
        assert_eq!(solo, step % slots);
        let packed = physical_step(step, w, slots, 4);
        let (fwd, back) = packed_shift(step, w);
        if fwd > 0 {
            assert_eq!(packed, fwd);
        } else if back > 0 {
            assert_eq!(packed, slots - back);
        } else {
            assert_eq!(packed, 0);
        }
    }
}
