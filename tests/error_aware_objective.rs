//! Tests of the error-aware exploration objective (the ELASM-direction
//! extension) and the static noise estimator it relies on.

use hecate::apps::{benchmark, Preset};
use hecate::backend::exec::{execute_encrypted, BackendOptions};
use hecate::backend::rms_error;
use hecate::compiler::estimator::estimate_noise_bits;
use hecate::compiler::options::Objective;
use hecate::compiler::{compile, CompileOptions, Scheme};
use hecate::ir::interp::interpret;
use hecate::ir::FunctionBuilder;

fn opts(w: f64) -> CompileOptions {
    let mut o = CompileOptions::with_waterline(w);
    o.degree = Some(512);
    o
}

#[test]
fn noise_estimate_improves_with_waterline() {
    // Higher scales → lower relative noise: the static estimate must be
    // monotone in the waterline.
    let bench = benchmark("SF", Preset::Small).unwrap();
    let mut prev: Option<f64> = None;
    for w in [18.0, 24.0, 30.0, 36.0] {
        let prog = compile(&bench.func, Scheme::Eva, &opts(w)).unwrap();
        let nb = prog.stats.estimated_noise_bits;
        if let Some(p) = prev {
            assert!(nb < p, "noise bits at w={w}: {nb} vs previous {p}");
        }
        prev = Some(nb);
    }
}

#[test]
fn noise_estimate_tracks_measured_error() {
    // The static estimate must land within a few bits of the measured RMS
    // error — enough accuracy to steer an explorer.
    let bench = benchmark("SF", Preset::Small).unwrap();
    let prog = compile(&bench.func, Scheme::Hecate, &opts(26.0)).unwrap();
    let run = execute_encrypted(&prog, &bench.inputs, &BackendOptions::default()).unwrap();
    let reference = interpret(&bench.func, &bench.inputs).unwrap();
    let measured = rms_error(&run.outputs["edges"], &reference["edges"]);
    let estimated_bits = prog.stats.estimated_noise_bits;
    let measured_bits = measured.log2();
    assert!(
        (estimated_bits - measured_bits).abs() < 8.0,
        "estimated 2^{estimated_bits:.1} vs measured 2^{measured_bits:.1}"
    );
}

#[test]
fn error_weighted_objective_chooses_lower_noise_plans() {
    // A deep chain where extra downscales save latency but cost precision.
    let mut b = FunctionBuilder::new("deep", 16);
    let x = b.input_cipher("x");
    let mut cur = x;
    for _ in 0..4 {
        cur = b.square(cur);
    }
    b.output(cur);
    let func = b.finish();

    let mut latency_opts = opts(22.0);
    latency_opts.objective = Objective::Latency;
    let fast = compile(&func, Scheme::Hecate, &latency_opts).unwrap();

    let mut precise_opts = opts(22.0);
    precise_opts.objective = Objective::LatencyAndError { error_weight: 2.0 };
    let precise = compile(&func, Scheme::Hecate, &precise_opts).unwrap();

    // A heavy error weight must never pick a noisier plan than the pure
    // latency objective; typically it picks a strictly quieter one.
    assert!(
        precise.stats.estimated_noise_bits <= fast.stats.estimated_noise_bits + 1e-9,
        "error-aware: {} bits vs latency-only: {} bits",
        precise.stats.estimated_noise_bits,
        fast.stats.estimated_noise_bits
    );
}

#[test]
fn zero_weight_matches_latency_objective() {
    let bench = benchmark("LR E2", Preset::Small).unwrap();
    let mut a = opts(24.0);
    a.objective = Objective::Latency;
    let mut b = opts(24.0);
    b.objective = Objective::LatencyAndError { error_weight: 0.0 };
    let pa = compile(&bench.func, Scheme::Hecate, &a).unwrap();
    let pb = compile(&bench.func, Scheme::Hecate, &b).unwrap();
    // Same explored ranking (log2 is monotone) → same chosen program.
    assert_eq!(pa.func, pb.func, "objectives must coincide at weight 0");
}

#[test]
fn direct_noise_estimator_on_known_structures() {
    // A single fresh input: noise is the fresh-encryption floor.
    let mut b = FunctionBuilder::new("one", 8);
    let x = b.input_cipher("x");
    b.output(x);
    let f = b.finish();
    let cfg = hecate::ir::types::TypeConfig::new(30.0, 60.0);
    let tys = hecate::ir::types::infer_types(&f, &cfg).unwrap();
    let nb = estimate_noise_bits(&f, &tys, 512);
    // fresh ≈ 0.5·log2(2·512·10.5) − 30.
    assert!((nb - (0.5 * (2.0 * 512.0 * 10.5f64).log2() - 30.0)).abs() < 1e-9);

    // Adding two equal-noise values raises noise by exactly half a bit.
    let mut b2 = FunctionBuilder::new("two", 8);
    let x = b2.input_cipher("x");
    let y = b2.input_cipher("y");
    let s = b2.add(x, y);
    b2.output(s);
    let f2 = b2.finish();
    let tys2 = hecate::ir::types::infer_types(&f2, &cfg).unwrap();
    let nb2 = estimate_noise_bits(&f2, &tys2, 512);
    assert!((nb2 - (nb + 0.5)).abs() < 1e-9);
}
