//! Cross-crate integration tests: every benchmark, every scheme, compiled
//! and verified; the compiled code preserves plaintext semantics; the
//! paper's qualitative claims hold in the estimates.

use hecate::apps::{all_benchmarks, Preset};
use hecate::compiler::{compile, CompileOptions, Scheme};
use hecate::ir::interp::{interpret, rms_error};
use hecate::ir::types::infer_types;

fn opts(w: f64) -> CompileOptions {
    let mut o = CompileOptions::with_waterline(w);
    o.degree = Some(512);
    o
}

#[test]
fn every_benchmark_compiles_under_every_scheme() {
    for bench in all_benchmarks(Preset::Small) {
        for scheme in Scheme::ALL {
            let prog = compile(&bench.func, scheme, &opts(26.0))
                .unwrap_or_else(|e| panic!("{} under {scheme}: {e}", bench.name));
            // The compiled program passes the full type checker.
            infer_types(&prog.func, &prog.cfg)
                .unwrap_or_else(|e| panic!("{} under {scheme} ill-typed: {e}", bench.name));
            assert!(prog.params.chain_len >= 1);
            assert!(prog.stats.estimated_latency_us > 0.0);
        }
    }
}

#[test]
fn compiled_code_is_semantics_preserving() {
    // The homomorphism property (§IV-A): with opaque ops as identities,
    // compiled programs compute exactly the input program's function.
    for bench in all_benchmarks(Preset::Small) {
        let reference = interpret(&bench.func, &bench.inputs).unwrap();
        for scheme in [Scheme::Eva, Scheme::Hecate] {
            let prog = compile(&bench.func, scheme, &opts(24.0)).unwrap();
            let compiled_out = interpret(&prog.func, &bench.inputs).unwrap();
            for (name, expect) in &reference {
                let got = &compiled_out[name];
                let err = rms_error(got, expect);
                assert!(
                    err < 1e-9,
                    "{} under {scheme}, output {name}: drift {err}",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn hecate_estimate_never_worse_than_eva() {
    // SMSE only accepts improving plans, and PARS's plan is in HECATE's
    // search space, so the estimate must not regress.
    for bench in all_benchmarks(Preset::Small) {
        for w in [22.0, 30.0] {
            let o = opts(w);
            let eva = compile(&bench.func, Scheme::Eva, &o).unwrap();
            let smse = compile(&bench.func, Scheme::Smse, &o).unwrap();
            let hecate = compile(&bench.func, Scheme::Hecate, &o).unwrap();
            assert!(
                smse.stats.estimated_latency_us <= eva.stats.estimated_latency_us + 1e-6,
                "{} w={w}: SMSE {} > EVA {}",
                bench.name,
                smse.stats.estimated_latency_us,
                eva.stats.estimated_latency_us
            );
            let _ = hecate;
        }
    }
}

#[test]
fn pars_cumulative_scale_never_exceeds_eva() {
    // The paper: "PARS always achieves a smaller cumulative scale which
    // defines the initial level of the program."
    for bench in all_benchmarks(Preset::Small) {
        let o = opts(24.0);
        let eva = compile(&bench.func, Scheme::Eva, &o).unwrap();
        let pars = compile(&bench.func, Scheme::Pars, &o).unwrap();
        assert!(
            pars.params.total_bits <= eva.params.total_bits,
            "{}: PARS modulus {} bits > EVA {} bits",
            bench.name,
            pars.params.total_bits,
            eva.params.total_bits
        );
    }
}

#[test]
fn smu_counts_are_far_below_use_counts() {
    // Table III's core claim.
    for bench in all_benchmarks(Preset::Small) {
        let prog = compile(&bench.func, Scheme::Hecate, &opts(24.0)).unwrap();
        assert!(
            prog.stats.smu_units * 3 <= prog.stats.use_edges,
            "{}: {} SMUs vs {} uses",
            bench.name,
            prog.stats.smu_units,
            prog.stats.use_edges
        );
    }
}

#[test]
fn downscale_appears_only_in_proactive_schemes() {
    for bench in all_benchmarks(Preset::Small) {
        let eva = compile(&bench.func, Scheme::Eva, &opts(24.0)).unwrap();
        assert_eq!(
            eva.stats.op_counts.get("downscale"),
            None,
            "{}: EVA must not use downscale",
            bench.name
        );
    }
}

#[test]
fn security_selection_happens_without_degree_override() {
    let bench = &all_benchmarks(Preset::Small)[0];
    let mut o = CompileOptions::with_waterline(24.0);
    o.degree = None;
    let prog = compile(&bench.func, Scheme::Hecate, &o).unwrap();
    assert!(prog.params.secure, "auto-selected degree must be secure");
    assert!(prog.params.degree >= 1024);
}
