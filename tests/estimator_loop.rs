//! The closed estimator loop, end to end: execute benchmarks under
//! encryption with the tracer on, fold the `exec-op` spans into a
//! measured [`CostTable`], and check that the table (a) respects the
//! cost structure of RNS-CKKS (cost grows with active primes, i.e.
//! shrinks with level) and (b) feeds [`CostModel::Profiled`] so a
//! re-estimate reproduces the traced latency.
//!
//! Every traced run goes through `trace::capture`, which serializes
//! captures within this test binary — concurrent tests cannot steal or
//! pollute each other's event streams.

use hecate::apps::{all_benchmarks, benchmark, Benchmark, Preset};
use hecate::backend::exec::{execute_encrypted, BackendOptions};
use hecate::compiler::estimator::estimate_latency_us;
use hecate::compiler::{
    compile, traced_total_us, CompileOptions, CompiledProgram, CostModel, CostOp, CostTable, Scheme,
};
use hecate::telemetry::trace;
use std::collections::BTreeMap;
use std::sync::Arc;

fn opts() -> CompileOptions {
    let mut o = CompileOptions::with_waterline(24.0);
    o.degree = Some(512);
    o
}

/// Compiles and executes one benchmark with the tracer on, returning the
/// program and the events of the encrypted run (compile spans excluded).
fn traced_run(bench: &Benchmark) -> (CompiledProgram, Vec<hecate::telemetry::Event>) {
    let mut o = opts();
    o.degree = Some((2 * bench.func.vec_size).max(512));
    let prog = compile(&bench.func, Scheme::Hecate, &o).expect("benchmark compiles");
    let (run, events) =
        trace::capture(|| execute_encrypted(&prog, &bench.inputs, &BackendOptions::default()));
    run.expect("benchmark executes");
    (prog, events)
}

/// The HECATE cost premise (paper §II-C): an op over more active primes
/// is never cheaper. The traced table must come out monotone — the PAVA
/// repair in `CostTable::from_trace` guarantees it even on noisy
/// measurements — which is exactly "cost nonincreasing in level", since
/// level = chain_len − active_primes.
#[test]
fn traced_cost_table_is_monotone_in_active_primes() {
    for name in ["SF", "HCD"] {
        let bench = benchmark(name, Preset::Small).unwrap();
        let (prog, events) = traced_run(&bench);
        let table = CostTable::from_trace(&events, prog.params.degree);
        let mut by_op: BTreeMap<CostOp, Vec<(usize, f64)>> = BTreeMap::new();
        for (op, active, us) in table.measurements() {
            by_op.entry(op).or_default().push((active, us));
        }
        assert!(
            !by_op.is_empty(),
            "{name}: traced run produced an empty cost table"
        );
        for (op, mut cells) in by_op {
            cells.sort_by_key(|&(active, _)| active);
            for pair in cells.windows(2) {
                let (c0, us0) = pair[0];
                let (c1, us1) = pair[1];
                assert!(
                    us1 >= us0,
                    "{name}: {op:?} got cheaper with more primes: \
                     {us0:.3}µs @ {c0} primes vs {us1:.3}µs @ {c1} primes"
                );
            }
        }
    }
}

/// Closing the loop: a `Profiled` model built from a traced run must
/// re-estimate that run's latency almost exactly. The weighted PAVA
/// pooling preserves per-block weighted means, so the re-estimate's sum
/// over ops equals the traced kernel-time sum up to float noise.
#[test]
fn profiled_reestimate_reproduces_traced_latency() {
    let bench = benchmark("SF", Preset::Small).unwrap();
    let (prog, events) = traced_run(&bench);
    let traced = traced_total_us(&events);
    assert!(traced > 0.0, "traced run must record kernel time");
    let table = CostTable::from_trace(&events, prog.params.degree);
    let profiled = estimate_latency_us(
        &prog.func,
        &prog.types,
        &CostModel::Profiled(Arc::new(table)),
        prog.params.chain_len,
        prog.params.degree,
    );
    let ratio = profiled / traced;
    assert!(
        (ratio - 1.0).abs() < 0.02,
        "profiled re-estimate {profiled:.1}µs vs traced {traced:.1}µs (ratio {ratio:.4})"
    );
}

/// Fig. 8's practical claim: the analytic estimator ranks benchmarks the
/// way the machine does. Absolute debug-build timings are noisy, so the
/// assertion is confined to pairs the estimator separates by at least 2×
/// — those must never invert under measurement.
#[test]
fn analytic_ranking_matches_traced_ranking() {
    let rows: Vec<(String, f64, f64)> = all_benchmarks(Preset::Small)
        .iter()
        .map(|bench| {
            let (prog, events) = traced_run(bench);
            let traced = traced_total_us(&events);
            assert!(traced > 0.0, "{}: empty trace", bench.name);
            (bench.name.clone(), prog.stats.estimated_latency_us, traced)
        })
        .collect();
    for i in 0..rows.len() {
        for j in 0..rows.len() {
            let (na, est_a, tr_a) = &rows[i];
            let (nb, est_b, tr_b) = &rows[j];
            if est_a * 2.0 <= *est_b {
                assert!(
                    tr_a < tr_b,
                    "estimator says {na} ({est_a:.0}µs) is >=2x faster than {nb} \
                     ({est_b:.0}µs), but traced {tr_a:.0}µs vs {tr_b:.0}µs"
                );
            }
        }
    }
}
