//! Paper fidelity: the three scale-management plans of Fig. 2 for
//! `(x² + y²)³` at waterline 2^20.
//!
//! (a) EVA: rescale z² reactively, modswitch z — accumulative scale 2^60
//!     at the final multiply, both z-multiplies at level 0/1 mixed;
//! (b) PARS: downscale z before the level-matched multiply — final scale
//!     2^40;
//! (c) the SMSE winner: downscale z *before the first multiply*, so both
//!     multiplications of z³ = z·z·z run at level 1 — higher accumulative
//!     scale than (b) but better performance.
//!
//! We hand-build all three, verify each against the type system, and check
//! the estimator ranks (c) fastest — the paper's Solution-3 argument.

use hecate::compiler::estimator::{estimate_latency_us, CostModel};
use hecate::compiler::{compile, CompileOptions, Scheme};
use hecate::ir::types::{infer_types, Type, TypeConfig};
use hecate::ir::{Function, Op};

const W: f64 = 20.0;
const SF: f64 = 60.0;

fn base(f: &mut Function) -> (hecate::ir::ValueId, hecate::ir::ValueId) {
    let x = f.push(Op::Input { name: "x".into() });
    let y = f.push(Op::Input { name: "y".into() });
    let x2 = f.push(Op::Mul(x, x));
    let y2 = f.push(Op::Mul(y, y));
    let z = f.push(Op::Add(x2, y2)); // scale 2^40, level 0
    (z, x)
}

/// Fig. 2a — EVA's plan.
fn plan_a() -> Function {
    let mut f = Function::new("fig2a", 4);
    let (z, _) = base(&mut f);
    let z2 = f.push(Op::Mul(z, z)); // 2^80, level 0
    let z2r = f.push(Op::Rescale(z2)); // 2^20, level 1
    let zm = f.push(Op::ModSwitch(z)); // 2^40, level 1
    let z3 = f.push(Op::Mul(z2r, zm)); // 2^60, level 1
    f.mark_output("r", z3);
    f
}

/// Fig. 2b — PARS's plan.
fn plan_b() -> Function {
    let mut f = Function::new("fig2b", 4);
    let (z, _) = base(&mut f);
    let z2 = f.push(Op::Mul(z, z)); // 2^80, level 0
    let z2r = f.push(Op::Rescale(z2)); // 2^20, level 1
    let zd = f.push(Op::Downscale(z)); // 2^20, level 1
    let z3 = f.push(Op::Mul(z2r, zd)); // 2^40, level 1
    f.mark_output("r", z3);
    f
}

/// Fig. 2c — the performance-optimal plan: downscale z first, then both
/// multiplies run at level 1.
fn plan_c() -> Function {
    let mut f = Function::new("fig2c", 4);
    let (z, _) = base(&mut f);
    let zd = f.push(Op::Downscale(z)); // 2^20, level 1
    let z2 = f.push(Op::Mul(zd, zd)); // 2^40, level 1
    let z3 = f.push(Op::Mul(z2, zd)); // 2^60, level 1
    f.mark_output("r", z3);
    f
}

fn typed(f: &Function) -> Vec<Type> {
    infer_types(f, &TypeConfig::new(W, SF)).expect("plan type-checks")
}

#[test]
fn all_three_plans_satisfy_the_type_system() {
    for (name, f) in [("a", plan_a()), ("b", plan_b()), ("c", plan_c())] {
        let tys = typed(&f);
        assert!(!tys.is_empty(), "plan {name}");
    }
}

#[test]
fn plan_scales_match_the_figure() {
    let scale_of_output = |f: &Function| {
        let tys = typed(f);
        let (_, v) = &f.outputs()[0];
        tys[v.index()]
    };
    assert_eq!(
        scale_of_output(&plan_a()),
        Type::Cipher {
            scale: 60.0,
            level: 1
        },
        "EVA's z³"
    );
    assert_eq!(
        scale_of_output(&plan_b()),
        Type::Cipher {
            scale: 40.0,
            level: 1
        },
        "PARS's z³ is lower than EVA's"
    );
    assert_eq!(
        scale_of_output(&plan_c()),
        Type::Cipher {
            scale: 60.0,
            level: 1
        },
        "plan (c) accepts a higher scale than (b)"
    );
}

#[test]
fn estimator_prefers_plan_c() {
    // Same chain for all three plans (they reach level 1 with ≤80-bit
    // peaks): price them on a fixed 3-prime chain at degree 4096.
    let model = CostModel::Analytic;
    let cost = |f: &Function| estimate_latency_us(f, &typed(f), &model, 3, 4096);
    let (a, b, c) = (cost(&plan_a()), cost(&plan_b()), cost(&plan_c()));
    // (c) runs two of its three z-multiplies at level 1 → cheapest.
    assert!(c < a, "plan c ({c:.0}µs) must beat EVA's plan a ({a:.0}µs)");
    assert!(c < b, "plan c ({c:.0}µs) must beat plan b ({b:.0}µs)");
}

#[test]
fn hecate_discovers_a_plan_at_least_as_good_as_c() {
    // The SMSE search space contains plan (c); the explorer must match or
    // beat its estimate under the same parameters.
    let mut f = Function::new("motivating", 4);
    let (z, _) = base(&mut f);
    let z2 = f.push(Op::Mul(z, z));
    let z3 = f.push(Op::Mul(z2, z));
    f.mark_output("r", z3);

    let mut opts = CompileOptions::with_waterline(W);
    opts.degree = Some(4096);
    let prog = compile(&f, Scheme::Hecate, &opts).unwrap();
    let c_plan = plan_c();
    let c_cost = estimate_latency_us(
        &c_plan,
        &typed(&c_plan),
        &opts.cost_model,
        prog.params.chain_len,
        4096,
    );
    assert!(
        prog.stats.estimated_latency_us <= c_cost * 1.05,
        "HECATE found {:.0}µs vs plan (c) {:.0}µs",
        prog.stats.estimated_latency_us,
        c_cost
    );
}
