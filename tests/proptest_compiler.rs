//! Property-based tests over randomly generated FHE programs.
//!
//! Programs are random DAGs of homomorphic operations; the properties are
//! the compiler's core invariants: compiled code always type-checks under
//! C1–C3, preserves plaintext semantics exactly, and the proactive
//! scheme's modulus never exceeds the baseline's.

use hecate::backend::exec::{execute_encrypted, BackendOptions, GuardOptions};
use hecate::backend::noise::{max_rms_error, simulate};
use hecate::compiler::{compile, compile_with_fallback, CompileOptions, Scheme};
use hecate::ir::interp::{interpret, rms_error};
use hecate::ir::types::infer_types;
use hecate::ir::verify::verify_plan;
use hecate::ir::{ConstData, Function, Op, ValueId};
use proptest::prelude::*;
use std::collections::HashMap;

const VEC: usize = 8;

/// An abstract op choice, to be wired to random earlier values.
#[derive(Debug, Clone)]
enum Pick {
    Add,
    Sub,
    Mul,
    Negate,
    Rotate(usize),
    Const(f64),
}

fn pick_strategy() -> impl Strategy<Value = Pick> {
    prop_oneof![
        Just(Pick::Add),
        Just(Pick::Sub),
        Just(Pick::Mul),
        Just(Pick::Negate),
        (1usize..VEC).prop_map(Pick::Rotate),
        (-100i32..100).prop_map(|v| Pick::Const(v as f64 / 100.0)),
    ]
}

/// Builds a random well-formed program from op picks and operand seeds.
fn build_program(picks: &[(Pick, u64, u64)], n_inputs: usize) -> Function {
    let mut f = Function::new("random", VEC);
    let mut values: Vec<ValueId> = Vec::new();
    for i in 0..n_inputs {
        values.push(f.push(Op::Input {
            name: format!("x{i}"),
        }));
    }
    for (pick, s1, s2) in picks {
        let a = values[(*s1 % values.len() as u64) as usize];
        let b = values[(*s2 % values.len() as u64) as usize];
        let v = match pick {
            Pick::Add => f.push(Op::Add(a, b)),
            Pick::Sub => f.push(Op::Sub(a, b)),
            // Cap multiplication fan-in to keep scales finite: multiplying
            // two deep values doubles scale growth, which is fine — the
            // compiler must handle it or report NoParameters.
            Pick::Mul => f.push(Op::Mul(a, b)),
            Pick::Negate => f.push(Op::Negate(a)),
            Pick::Rotate(s) => f.push(Op::Rotate { value: a, step: *s }),
            Pick::Const(v) => f.push(Op::Const {
                data: ConstData::splat(*v),
            }),
        };
        values.push(v);
    }
    // Every sink becomes an output so nothing is trivially dead.
    let used: std::collections::HashSet<ValueId> =
        f.ops().iter().flat_map(|o| o.operands()).collect();
    let sinks: Vec<ValueId> = f.value_ids().filter(|v| !used.contains(v)).collect();
    for (i, v) in sinks.into_iter().enumerate() {
        f.mark_output(format!("o{i}"), v);
    }
    f
}

fn inputs_for(n_inputs: usize) -> HashMap<String, Vec<f64>> {
    (0..n_inputs)
        .map(|i| {
            let v: Vec<f64> = (0..VEC)
                .map(|k| 0.1 + 0.05 * ((i + k) % 7) as f64)
                .collect();
            (format!("x{i}"), v)
        })
        .collect()
}

/// Whether any output is cipher-valued (pure-constant programs are not
/// compilable FHE programs).
fn has_cipher_output(f: &Function) -> bool {
    let mut cipher = vec![false; f.len()];
    for (i, op) in f.ops().iter().enumerate() {
        cipher[i] = match op {
            Op::Input { .. } => true,
            Op::Const { .. } => false,
            _ => op.operands().iter().any(|v| cipher[v.index()]),
        };
    }
    f.outputs().iter().any(|(_, v)| cipher[v.index()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_random_programs_type_check_and_preserve_semantics(
        picks in proptest::collection::vec((pick_strategy(), any::<u64>(), any::<u64>()), 3..25),
        n_inputs in 1usize..4,
    ) {
        let func = build_program(&picks, n_inputs);
        prop_assume!(has_cipher_output(&func));
        let ins = inputs_for(n_inputs);
        let reference = interpret(&func, &ins).unwrap();

        let mut opts = CompileOptions::with_waterline(24.0);
        opts.degree = Some(512);
        for scheme in [Scheme::Eva, Scheme::Pars, Scheme::Hecate] {
            match compile(&func, scheme, &opts) {
                Ok(prog) => {
                    // Invariant 1: the result type-checks under C1–C3.
                    infer_types(&prog.func, &prog.cfg).expect("compiled code type-checks");
                    // Invariant 2: plaintext semantics are preserved.
                    let out = interpret(&prog.func, &ins).unwrap();
                    for (name, expect) in &reference {
                        prop_assert!(
                            rms_error(&out[name], expect) < 1e-9,
                            "{scheme}: output {name} drifted"
                        );
                    }
                    // Invariant 3: parameters cover the program's levels.
                    prop_assert!(prog.params.chain_len > prog.params.max_level);
                }
                // Deep multiplication chains may legitimately exceed every
                // parameter set; that must be a clean error, not a panic.
                Err(e) => {
                    let msg = e.to_string();
                    prop_assert!(
                        msg.contains("parameters")
                            || msg.contains("type error")
                            || msg.contains("verification failed"),
                        "unexpected error: {msg}"
                    );
                }
            }
        }
    }

    #[test]
    fn pars_modulus_never_exceeds_eva(
        picks in proptest::collection::vec((pick_strategy(), any::<u64>(), any::<u64>()), 3..20),
        n_inputs in 1usize..3,
    ) {
        let func = build_program(&picks, n_inputs);
        prop_assume!(has_cipher_output(&func));
        let mut opts = CompileOptions::with_waterline(22.0);
        opts.degree = Some(512);
        let eva = compile(&func, Scheme::Eva, &opts);
        let pars = compile(&func, Scheme::Pars, &opts);
        if let (Ok(e), Ok(p)) = (eva, pars) {
            prop_assert!(
                p.params.total_bits <= e.params.total_bits,
                "PARS {} bits > EVA {} bits",
                p.params.total_bits,
                e.params.total_bits
            );
        }
    }

    /// The guarded pipeline never panics on random input: every program
    /// either compiles (and the result re-verifies against the parameters
    /// it selected) or fails with a structured, classifiable error — under
    /// both the plain driver and the fallback ladder.
    #[test]
    fn random_programs_never_panic_through_verifier_and_fallback(
        picks in proptest::collection::vec((pick_strategy(), any::<u64>(), any::<u64>()), 3..25),
        n_inputs in 1usize..4,
    ) {
        let func = build_program(&picks, n_inputs);
        prop_assume!(has_cipher_output(&func));
        let mut opts = CompileOptions::with_waterline(24.0);
        opts.degree = Some(512);
        match compile_with_fallback(&func, Scheme::Hecate, &opts) {
            Ok(prog) => {
                // A shipped plan must satisfy every invariant the verifier
                // knows, bound to the modulus chain it actually selected.
                verify_plan(&prog.func, &prog.bound_config(), "proptest-audit")
                    .expect("shipped plan re-verifies against its own parameters");
                prop_assert!(prog.stats.fallback.is_some());
            }
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(
                    msg.contains("parameters")
                        || msg.contains("type error")
                        || msg.contains("verification failed"),
                    "unexpected error: {msg}"
                );
            }
        }
    }
}

proptest! {
    // Encrypted execution is the expensive half; a handful of deterministic
    // cases still covers a meaningful slice of random program shapes.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Verifier-accepted plans round-trip real encrypted execution, and the
    /// measured output error stays within the noise simulator's first-order
    /// estimate (with headroom for what the model ignores), under strict
    /// runtime guards the whole way.
    #[test]
    fn verifier_accepted_plans_round_trip_encrypted_within_noise_bound(
        picks in proptest::collection::vec((pick_strategy(), any::<u64>(), any::<u64>()), 3..10),
        n_inputs in 1usize..3,
    ) {
        let func = build_program(&picks, n_inputs);
        prop_assume!(has_cipher_output(&func));
        let mut opts = CompileOptions::with_waterline(26.0);
        opts.degree = Some(256);
        let Ok(prog) = compile(&func, Scheme::Hecate, &opts) else {
            // Infeasible programs are covered by the properties above.
            prop_assume!(false);
            unreachable!()
        };
        let ins = inputs_for(n_inputs);
        let reference = interpret(&func, &ins).unwrap();
        let sim = simulate(&prog, &ins, prog.params.degree);
        let run = execute_encrypted(
            &prog,
            &ins,
            &BackendOptions {
                guard: GuardOptions::strict(0.5),
                ..BackendOptions::default()
            },
        )
        .expect("verifier-accepted plan executes under strict guards");
        // The simulator is a first-order variance model; allow an order of
        // magnitude of headroom plus an absolute floor for rounding noise.
        let bound = (max_rms_error(&sim) * 32.0).max(2f64.powi(-10));
        for (name, expect) in &reference {
            let measured = rms_error(&run.outputs[name], expect);
            prop_assert!(
                measured < bound,
                "output {name}: measured rms {measured:.3e} exceeds simulated bound {bound:.3e}"
            );
        }
    }
}
