//! Observability files survive *failing* runs of `hecatec`.
//!
//! The contract (DESIGN "Precision observability"): `--trace`,
//! `--metrics`, and `--precision-trace` files are written on every exit
//! path, so a run that dies mid-execution — here, a noise-budget guard
//! tripping via `--max-rms` — still leaves valid, complete files
//! covering everything up to the failure.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::Command;

fn hecatec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hecatec"))
}

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/ir")
        .join(name)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hecatec-test-{}-{name}", std::process::id()))
}

/// Structural JSONL check without a JSON dependency: every non-empty
/// line is one object with balanced braces and an even quote count.
fn assert_valid_jsonl(path: &PathBuf) -> usize {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut n = 0;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line in {}: {line:?}",
            path.display()
        );
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "unbalanced braces in {}: {line:?}",
            path.display()
        );
        assert_eq!(
            line.matches('"').count() % 2,
            0,
            "unbalanced quotes in {}: {line:?}",
            path.display()
        );
        n += 1;
    }
    n
}

#[test]
fn failing_run_still_writes_valid_observability_files() {
    let trace = tmp("fail.trace.jsonl");
    let precision = tmp("fail.precision.jsonl");
    let metrics = tmp("fail.metrics.prom");
    // poly.heir's modeled noise spans ~2.5e-5 (fresh input) to ~1.3e-4
    // (deepest op), so a 5e-5 budget admits the first ops and then
    // trips BudgetExhausted mid-run — the exact path that used to lose
    // the buffered telemetry.
    let out = hecatec()
        .arg(example("poly.heir"))
        .args(["--run", "--quiet", "--max-rms", "5e-5"])
        .args([
            "--trace",
            trace.to_str().unwrap(),
            "--trace-format",
            "jsonl",
        ])
        .args(["--precision-trace", precision.to_str().unwrap()])
        .args(["--metrics", metrics.to_str().unwrap()])
        .output()
        .expect("hecatec runs");
    assert_eq!(
        out.status.code(),
        Some(5),
        "expected execution-failure exit, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("noise budget"),
        "guard failure not reported: {stderr}"
    );

    // All three files exist and are valid despite the failure.
    let trace_events = assert_valid_jsonl(&trace);
    assert!(trace_events > 0, "trace is empty on the error path");
    let precision_records = assert_valid_jsonl(&precision);
    assert!(
        precision_records >= 2,
        "expected the ops executed before the failure in the precision \
         trace, got {precision_records} record(s)"
    );
    let precision_text = std::fs::read_to_string(&precision).unwrap();
    assert!(precision_text.contains("\"kind\":\"precision\""));
    assert!(precision_text.contains("margin_bits"));
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        metrics_text.contains("hecate_"),
        "metrics missing on the error path: {metrics_text:?}"
    );
    for p in [trace, precision, metrics] {
        let _ = std::fs::remove_file(p);
    }
}

/// A serve run whose workers die by injected chaos panics still exits
/// through the observability path: typed per-request failures, exit 5,
/// valid trace/metrics/precision files, and the panic/respawn counters
/// reconciled in both the stats JSON and the Prometheus export.
#[test]
fn chaos_panic_serve_still_writes_observability_files() {
    let trace = tmp("chaos.trace.jsonl");
    let precision = tmp("chaos.precision.jsonl");
    let metrics = tmp("chaos.metrics.prom");
    // 4 requests on one worker, panic injected into every 2nd: the chaos
    // sequence hits requests 0 and 2, so exactly 2 panics are isolated
    // (and the worker respawns twice) while requests 1 and 3 succeed.
    let out = hecatec()
        .arg(example("poly.heir"))
        .args([
            "--serve", "--jobs", "1", "--repeat", "4", "--degree", "2048",
        ])
        .args(["--chaos", "2", "--chaos-kind", "panic"])
        .args([
            "--trace",
            trace.to_str().unwrap(),
            "--trace-format",
            "jsonl",
        ])
        .args(["--precision-trace", precision.to_str().unwrap()])
        .args(["--metrics", metrics.to_str().unwrap()])
        .output()
        .expect("hecatec runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(5),
        "expected execution-failure exit\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stderr.contains("worker panicked while serving request"),
        "panics not reported as typed failures: {stderr}"
    );
    assert!(
        stdout.contains("\"panics\":2") && stdout.contains("\"worker_respawns\":2"),
        "stats JSON missing panic accounting: {stdout}"
    );
    assert!(
        stdout.contains("\"completed\":2"),
        "surviving requests must still complete: {stdout}"
    );

    let trace_events = assert_valid_jsonl(&trace);
    assert!(trace_events > 0, "trace is empty on the panic path");
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        trace_text.contains("panic-recovered"),
        "no panic-recovered mark in the trace"
    );
    assert!(
        trace_text.contains("worker-respawn"),
        "no worker-respawn mark in the trace"
    );
    assert_valid_jsonl(&precision); // written (and well-formed) regardless
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        metrics_text.contains("hecate_runtime_panics_total 2"),
        "metrics missing panic counter: {metrics_text:?}"
    );
    assert!(
        metrics_text.contains("hecate_runtime_worker_respawns_total 2"),
        "metrics missing respawn counter: {metrics_text:?}"
    );
    for p in [trace, precision, metrics] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn audit_bench_passes_and_emits_precision_trace() {
    let precision = tmp("audit.precision.jsonl");
    let out = hecatec()
        .args(["--audit", "--bench", "SF"])
        .args(["--precision-trace", precision.to_str().unwrap()])
        .output()
        .expect("hecatec runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "audit failed\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("PASSED"), "no audit verdict: {stdout}");
    assert!(
        stdout.contains("tightest waterline margin"),
        "no margin summary: {stdout}"
    );
    let records = assert_valid_jsonl(&precision);
    assert!(records > 0, "audit left an empty precision trace");
    let text = std::fs::read_to_string(&precision).unwrap();
    assert!(
        text.contains("\"kind\":\"precision-probe\""),
        "no probe records in the audit's precision trace"
    );
    let _ = std::fs::remove_file(precision);
}
