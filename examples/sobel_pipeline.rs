//! Encrypted image processing: the Sobel edge detector on a 16×16 image.
//!
//! Demonstrates the full privacy-preserving offload flow — the client
//! encrypts an image, the "server" runs the HECATE-compiled filter without
//! seeing the pixels, and the client decrypts an edge map — and renders
//! both images as ASCII art.
//!
//! Run with: `cargo run --release --example sobel_pipeline`

use hecate::apps::sobel::{build, SobelConfig};
use hecate::backend::exec::{execute_encrypted, BackendOptions};
use hecate::backend::rms_error;
use hecate::compiler::{compile, CompileOptions, Scheme};
use hecate::ir::interp::interpret;

const SHADES: &[u8] = b" .:-=+*#%@";

fn render(data: &[f64], h: usize, w: usize) -> String {
    let max = data.iter().cloned().fold(f64::MIN, f64::max);
    let min = data.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-9);
    let mut out = String::new();
    for r in 0..h {
        for c in 0..w {
            let v = (data[r * w + c] - min) / span;
            let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (h, w) = (16, 16);
    let (func, inputs) = build(&SobelConfig { h, w, seed: 7 });

    println!("original image:\n{}", render(&inputs["image"], h, w));

    let mut opts = CompileOptions::with_waterline(26.0);
    opts.degree = Some(512);
    let eva = compile(&func, Scheme::Eva, &opts)?;
    let hec = compile(&func, Scheme::Hecate, &opts)?;
    println!(
        "compilation: EVA estimates {:.1}ms ({} primes), HECATE {:.1}ms ({} primes)",
        eva.stats.estimated_latency_us / 1e3,
        eva.params.chain_len,
        hec.stats.estimated_latency_us / 1e3,
        hec.params.chain_len
    );

    let run = execute_encrypted(&hec, &inputs, &BackendOptions::default())?;
    let reference = interpret(&func, &inputs)?;
    let err = rms_error(&run.outputs["edges"], &reference["edges"]);
    println!(
        "encrypted Sobel in {:.1}ms, RMS error {err:.2e} (bound 2^-8 = {:.2e})\n",
        run.total_us / 1e3,
        2f64.powi(-8)
    );
    println!("edge map (computed without decrypting the image):");
    println!("{}", render(&run.outputs["edges"], h, w));
    Ok(())
}
