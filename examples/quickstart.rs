//! Quickstart: the paper's running example `(x² + y²)³`.
//!
//! Builds the program, compiles it under all four scale-management
//! schemes, prints the generated scale-managed IR, and executes the
//! HECATE-compiled version under real RNS-CKKS encryption.
//!
//! Run with: `cargo run --release --example quickstart`

use hecate::backend::exec::{execute_encrypted, BackendOptions};
use hecate::compiler::{compile, CompileOptions, Scheme};
use hecate::ir::interp::interpret;
use hecate::ir::print::print_function;
use hecate::ir::FunctionBuilder;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build (x² + y²)³ — Fig. 2 of the paper.
    let mut b = FunctionBuilder::new("motivating", 16);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let x2 = b.square(x);
    let y2 = b.square(y);
    let z = b.add(x2, y2);
    let z2 = b.mul(z, z);
    let z3 = b.mul(z2, z);
    b.output_named("result", z3);
    let func = b.finish();

    println!("input program:\n{}", print_function(&func, None));

    // Compile under each scheme at waterline 2^20 (the figure's setting).
    let mut opts = CompileOptions::with_waterline(20.0);
    opts.degree = Some(512); // small ring so the example runs instantly
    for scheme in Scheme::ALL {
        let prog = compile(&func, scheme, &opts)?;
        println!(
            "{scheme:>6}: estimated {:>9.0}µs | chain {} primes | {} ops | plans explored {}",
            prog.stats.estimated_latency_us,
            prog.params.chain_len,
            prog.func.len(),
            prog.stats.plans_explored,
        );
    }

    // Show HECATE's scale-managed output with types.
    let prog = compile(&func, Scheme::Hecate, &opts)?;
    println!(
        "\nHECATE-compiled program:\n{}",
        print_function(&prog.func, Some(&prog.types))
    );

    // Execute under encryption and check against the plaintext reference.
    let mut inputs = HashMap::new();
    inputs.insert("x".to_string(), vec![1.0, 0.5, -0.25]);
    inputs.insert("y".to_string(), vec![2.0, 0.5, 0.75]);
    let run = execute_encrypted(&prog, &inputs, &BackendOptions::default())?;
    let reference = interpret(&func, &inputs)?;

    println!("homomorphic latency: {:.1}ms", run.total_us / 1e3);
    println!("slot |  encrypted result |  expected (x²+y²)³");
    for i in 0..3 {
        println!(
            "{i:>4} | {:>17.6} | {:>18.6}",
            run.outputs["result"][i], reference["result"][i]
        );
    }
    Ok(())
}
