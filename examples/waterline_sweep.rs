//! The waterline sweep behind the paper's evaluation, visualized.
//!
//! Compiles the Harris corner detector at every waterline under each
//! scheme, prints estimated latency and estimated error side by side, and
//! marks each scheme's chosen operating point (fastest within the 2⁻⁸
//! error bound). This is the selection loop Fig. 7 and Table II run per
//! benchmark.
//!
//! Run with: `cargo run --release --example waterline_sweep`

use hecate::apps::{benchmark, Preset};
use hecate::compiler::{compile, CompileOptions, Scheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmark("HCD", Preset::Small).expect("benchmark exists");
    let waterlines: Vec<f64> = (16..=44).step_by(4).map(|w| w as f64).collect();
    let bound_bits = -8.0;

    println!("Harris corner detection: waterline sweep (error bound 2^-8)\n");
    for scheme in Scheme::ALL {
        println!("{scheme}:");
        println!(
            "  {:>10} {:>12} {:>12} {:>7} {:>8}",
            "waterline", "est.latency", "est.error", "primes", "chosen"
        );
        let mut best: Option<(f64, f64)> = None;
        let mut rows = Vec::new();
        for &w in &waterlines {
            let mut opts = CompileOptions::with_waterline(w);
            opts.degree = Some(512);
            match compile(&bench.func, scheme, &opts) {
                Ok(prog) => {
                    let lat = prog.stats.estimated_latency_us;
                    let noise = prog.stats.estimated_noise_bits;
                    let feasible = noise <= bound_bits;
                    if feasible && best.map(|(_, l)| lat < l).unwrap_or(true) {
                        best = Some((w, lat));
                    }
                    rows.push((w, Some((lat, noise, prog.params.chain_len, feasible))));
                }
                Err(_) => rows.push((w, None)),
            }
        }
        for (w, row) in rows {
            match row {
                Some((lat, noise, primes, feasible)) => {
                    let marker = match best {
                        Some((bw, _)) if bw == w => "  ← best",
                        _ if !feasible => "  (error)",
                        _ => "",
                    };
                    println!(
                        "  {:>10} {:>10.1}ms {:>11.1}b {:>7} {marker}",
                        w,
                        lat / 1e3,
                        noise,
                        primes
                    );
                }
                None => println!("  {w:>10} {:>12} {:>12}", "infeasible", "-"),
            }
        }
        println!();
    }
    println!(
        "Reading: low waterlines run fast but exceed the error bound; high\n\
         waterlines are precise but need longer modulus chains. Each scheme\n\
         picks its fastest feasible point — HECATE's proactive plans shift\n\
         the whole frontier down."
    );
    Ok(())
}
