//! Privacy-preserving model training: linear regression by gradient
//! descent over encrypted samples.
//!
//! The training data never leaves encryption; only the final model
//! parameters are decrypted. Compares the encrypted result against
//! plaintext gradient descent and against the ground-truth line, across
//! all four scale-management schemes.
//!
//! Run with: `cargo run --release --example encrypted_regression`

use hecate::apps::regression::{build_linear, reference_linear, RegressionConfig};
use hecate::backend::exec::{execute_encrypted, BackendOptions};
use hecate::compiler::{compile, CompileOptions, Scheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = RegressionConfig::small(3, 42);
    let (func, inputs) = build_linear(&cfg);
    println!(
        "training on {} encrypted samples, {} epochs (ground truth: y = 0.7x + 0.2)\n",
        cfg.n, cfg.epochs
    );

    let (ref_w, ref_c) = reference_linear(&inputs["x"], &inputs["y"], cfg.epochs, cfg.lr);
    println!("plaintext gradient descent: w = {ref_w:.4}, c = {ref_c:.4}\n");

    let mut opts = CompileOptions::with_waterline(28.0);
    opts.degree = Some(512);
    for scheme in Scheme::ALL {
        let prog = compile(&func, scheme, &opts)?;
        let run = execute_encrypted(&prog, &inputs, &BackendOptions::default())?;
        let w = run.outputs["w"][0];
        let c = run.outputs["c"][0];
        println!(
            "{scheme:>6}: w = {w:.4}, c = {c:.4} | {:.0}ms homomorphic | {} primes | Δw = {:.1e}",
            run.total_us / 1e3,
            run.chain_len,
            (w - ref_w).abs()
        );
    }
    Ok(())
}
