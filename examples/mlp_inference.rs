//! Encrypted neural-network inference: a square-activation MLP classifier
//! evaluated on an encrypted input vector.
//!
//! Shows the compile-time effect of performance-aware scale management
//! (chain length, estimated latency) and verifies that the encrypted
//! logits match plaintext inference to within the CKKS error bound.
//!
//! Run with: `cargo run --release --example mlp_inference`

use hecate::apps::mlp::{build, reference, MlpConfig};
use hecate::backend::exec::{execute_encrypted, BackendOptions};
use hecate::compiler::{compile, CompileOptions, Scheme};

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MlpConfig::small(9);
    let (func, inputs) = build(&cfg);
    println!(
        "MLP {}→{}→{} with square activation, input packed into {} slots\n",
        cfg.in_dim, cfg.hidden, cfg.out, func.vec_size
    );

    let mut opts = CompileOptions::with_waterline(26.0);
    opts.degree = Some(512);

    let eva = compile(&func, Scheme::Eva, &opts)?;
    let prog = compile(&func, Scheme::Hecate, &opts)?;
    println!(
        "EVA:    {} ops, {} primes, estimated {:.0}ms",
        eva.func.len(),
        eva.params.chain_len,
        eva.stats.estimated_latency_us / 1e3
    );
    println!(
        "HECATE: {} ops, {} primes, estimated {:.0}ms\n",
        prog.func.len(),
        prog.params.chain_len,
        prog.stats.estimated_latency_us / 1e3
    );

    let run = execute_encrypted(&prog, &inputs, &BackendOptions::default())?;
    let expected = reference(&cfg, &inputs["x"]);
    println!("encrypted inference in {:.0}ms", run.total_us / 1e3);
    println!("\nclass | encrypted logit | plaintext logit");
    for k in 0..cfg.out {
        println!(
            "{k:>5} | {:>15.6} | {:>15.6}",
            run.outputs["logits"][k], expected[k]
        );
    }
    let got = argmax(&run.outputs["logits"][..cfg.out]);
    let want = argmax(&expected);
    println!("\npredicted class: {got} (plaintext: {want})");
    assert_eq!(got, want, "encrypted prediction must match");
    Ok(())
}
